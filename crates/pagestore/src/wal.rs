//! Page-oriented write-ahead log with group commit and redo recovery.
//!
//! The WAL lives on its **own block device** beside the data device, so
//! the data file keeps the exact layout the paper experiments were
//! calibrated against (header at page 0, etc.).  Page 0 of the log device
//! is an **anchor** naming the current log generation; pages 1.. hold a
//! byte stream of physical redo records.
//!
//! # Log stream and LSNs
//!
//! An LSN is a logical byte offset into the append-only record stream.
//! The anchor's `base_lsn` maps the stream onto the device: stream byte
//! `s` lives at offset `(s − base_lsn) % page_size` of log page
//! `1 + (s − base_lsn) / page_size`.  Each record is framed as
//!
//! ```text
//! lsn u64 | body_len u32 | kind u8 | checksum u64 | body …
//! ```
//!
//! with the checksum (FNV-1a 64) covering `(lsn, kind, body)`.  Four
//! record kinds exist:
//!
//! * **FirstMod** — the *first* modification of a page since the last
//!   checkpoint horizon: the full pre-image of the page plus the
//!   byte-range delta of this update.  Redo never needs the data device
//!   for such a page.
//! * **Delta** — a later modification: byte-range delta only.
//! * **Commit** — a transaction boundary; recovery replays exactly the
//!   records up to the last durable Commit.
//! * **CheckpointBegin** — a fuzzy checkpoint marker carrying the
//!   truncation horizon and the set of in-flight transactions at the
//!   instant the checkpoint started (see below).
//!
//! Update records carry the id of the transaction that appended them.  A
//! transaction here is a maximal run of one thread's updates between
//! commit boundaries: [`Wal::log_update`] assigns the calling thread a
//! fresh id on its first update after a commit, and [`Wal::commit`]
//! closes *every* in-flight run (commit boundaries of a serialized
//! history cover everything appended so far — see the caveat at the end).
//!
//! Appending buffers bytes in memory; they reach the device when a commit
//! (or a write-back barrier) forces the log. The partially-filled tail
//! page is append-rewritten: every rewrite carries the identical durable
//! prefix, so under the torn-write model (prefix of sectors persists) a
//! torn tail rewrite can only damage bytes past the last sync — exactly
//! the bytes recovery discards anyway when the checksum chain breaks.
//!
//! # The WAL-before-data invariant
//!
//! The buffer pool stamps each frame with the end-LSN of its latest log
//! record and calls [`Wal::make_durable`] before any device write-back
//! ([`crate::buffer::BufferPool`] does this at its three write-back
//! sites).  Hence no page image whose update is not yet in the durable
//! log can reach the data device — redo can always reconstruct.
//!
//! # Group commit
//!
//! [`Wal::commit`] appends a Commit record and makes it durable with a
//! leader/follower protocol: the first committer to find no sync in
//! progress becomes the leader, flushes *everything appended so far*
//! (including other threads' records) and issues one device sync;
//! concurrent committers find their LSN already covered — or wait for the
//! in-flight sync and re-check — and complete **without their own
//! fsync**.  [`WalSnapshot`] exposes the exact accounting:
//! `commits == commit_syncs + group_commits` always holds.
//!
//! # Fuzzy checkpoints and truncation
//!
//! [`Wal::checkpoint`] (called by `Database::checkpoint` *after* the pool
//! wrote back every dirty page) does **not** require quiescent writers.
//! The caller samples the *flush fence* — `end_lsn()` — *before* the
//! write-back pass, so every record below the fence describes an update
//! whose page has since reached the data device.  The checkpoint then
//! picks a **truncation horizon**: the oldest of (the fence, the
//! checkpoint's own begin LSN, the first record LSN of every in-flight
//! transaction), lowered further until no page's record run straddles it
//! (a Delta above the horizon must never orphan its FirstMod below it).
//! A CheckpointBegin record naming the horizon and the in-flight
//! transactions is appended and flushed, and the anchor's *start* field
//! — the recovery scan start — advances to the horizon.  Records below
//! the horizon are thereby truncated logically; they are all committed
//! and their pages are on the data device, while every in-flight
//! writer's FirstMod pre-images (all at or above the horizon) survive
//! for rollback.  The per-generation FirstMod dedup is re-keyed to the
//! horizon: pages whose records were truncated must log a fresh
//! pre-image on their next update.
//!
//! When the checkpoint observes a **quiescent instant** — no in-flight
//! transaction, nothing appended past the fence — it instead performs
//! the full physical rewind: the anchor's `base` and `start` both move
//! to the end of log and log pages are reused from offset 0.  Stale
//! records from the previous generation cannot be mistaken for live
//! ones: a record's embedded LSN must equal its stream position, and
//! every stream position of the new generation maps to a strictly larger
//! LSN than any old record stored at the same device offset.  (Under a
//! fuzzy checkpoint the mapping is untouched, so no stale-byte question
//! arises.)
//!
//! # Recovery
//!
//! `Wal::attach` validates the anchor and scans the stream from the
//! anchor's `start` until the LSN/checksum chain breaks, yielding the
//! valid record prefix.  `BufferPool::recover` then replays all records
//! up to the last Commit into in-memory page images (FirstMod starts
//! from its pre-image, Delta applies on top, CheckpointBegin is a
//! no-op), **rolls back** the uncommitted tail by restoring the
//! pre-images of pages first modified in the tail, writes every touched
//! page to the data device, syncs, and checkpoints the log.  Pages whose
//! records all sit below the scan start are bitwise correct on the data
//! device (that is exactly what the truncation horizon guarantees), so
//! the result equals the committed prefix of history.
//!
//! Commit atomicity is defined at commit boundaries of a serialized
//! history: concurrent writers get durability (no committed record is
//! lost, and no uncommitted update survives a crash — even one flushed
//! to the data device inside a checkpoint window) but crash-atomicity of
//! *interleaved* uncommitted work remains the MVCC roadmap item's
//! business: a Commit record commits everything appended so far,
//! including other threads' open runs.

use crate::codec::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64};
use crate::disk::DiskManager;
use crate::error::{Error, Result};
use crate::page::PageId;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, PoisonError};
use std::thread::ThreadId;

/// Record framing: `lsn u64 | body_len u32 | kind u8 | checksum u64`.
const REC_HDR: usize = 8 + 4 + 1 + 8;
const KIND_FIRST_MOD: u8 = 1;
const KIND_DELTA: u8 = 2;
const KIND_COMMIT: u8 = 3;
const KIND_CHECKPOINT: u8 = 4;

/// Most in-flight transactions a CheckpointBegin record enumerates.  The
/// horizon alone is binding for truncation; the list is diagnostic, so
/// capping it bounds the record size without affecting correctness.
const MAX_CKPT_TXNS: usize = 4096;

/// Anchor page layout:
/// `magic u32 | version u16 | pad u16 | base u64 | start u64 | crc u64`.
/// `base` maps the stream onto the device (stream byte `base` is the first
/// byte of log page 1); `start` is where recovery scans from — truncation
/// advances `start`, while `base` moves only on a full physical rewind.
const WAL_MAGIC: u32 = 0x5249_574C; // "RIWL"
const WAL_VERSION: u16 = 2;
const ANCHOR_LEN: usize = 32;

/// Streaming FNV-1a 64 (the repo has no external checksum dependency; a
/// torn or stale record only needs to be *detected*, not authenticated).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn record_checksum(lsn: u64, kind: u8, body_parts: &[&[u8]]) -> u64 {
    let mut h = Fnv::new();
    h.update(&lsn.to_le_bytes());
    h.update(&[kind]);
    for part in body_parts {
        h.update(part);
    }
    h.finish()
}

/// A decoded log record (crate-internal: consumed by pool recovery).
#[derive(Debug, Clone)]
pub(crate) enum WalRecord {
    /// First modification of `page` since the last checkpoint horizon:
    /// full pre-image plus this update's byte-range delta.
    FirstMod { page: PageId, txn: u64, before: Vec<u8>, delta_off: usize, delta: Vec<u8> },
    /// Later modification of `page`: byte-range delta only.
    Delta { page: PageId, txn: u64, delta_off: usize, delta: Vec<u8> },
    /// Transaction boundary (commits every run appended so far).
    Commit { seq: u64, txn: u64 },
    /// Fuzzy checkpoint begin: the truncation horizon and the in-flight
    /// `(txn, first record LSN)` pairs at checkpoint start.  Replay skips
    /// it; it exists so the log is self-describing about what straddled
    /// the checkpoint.
    Checkpoint { horizon: u64, active: Vec<(u64, u64)> },
}

/// The valid log contents found at attach time, for `BufferPool::recover`.
pub(crate) struct RecoveredLog {
    /// All records of the valid prefix, in LSN order.
    pub records: Vec<WalRecord>,
    /// Number of leading records up to and including the last Commit.
    pub committed: usize,
}

/// What redo recovery did, as reported by `BufferPool::recover`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid records found in the log tail.
    pub records_scanned: usize,
    /// Records replayed (up to and including the last Commit).
    pub committed_records: usize,
    /// Records past the last Commit (rolled back).
    pub tail_records: usize,
    /// Commit boundaries replayed.
    pub commits: u64,
    /// Pages rebuilt from committed log records.
    pub pages_redone: usize,
    /// Pages restored to their pre-images (first modified in the tail).
    pub pages_rolled_back: usize,
    /// Distinct in-flight transactions whose tail updates were rolled
    /// back (0 when the crash caught no open transaction).
    pub txns_rolled_back: u64,
}

/// Monotonic WAL counters (atomics, like [`crate::stats::IoStats`]).
#[derive(Default)]
struct WalStats {
    records: AtomicU64,
    record_bytes: AtomicU64,
    commits: AtomicU64,
    commit_syncs: AtomicU64,
    group_commits: AtomicU64,
    forced_syncs: AtomicU64,
    checkpoint_syncs: AtomicU64,
    syncs: AtomicU64,
    checkpoints: AtomicU64,
    log_page_writes: AtomicU64,
}

/// Point-in-time copy of the WAL counters.
///
/// Invariants (single snapshot, quiescent log):
/// `commits == commit_syncs + group_commits` (every successful commit
/// either led one fsync or was covered by someone else's), and
/// `syncs == commit_syncs + forced_syncs + checkpoint_syncs` (every log
/// device sync is led by exactly one commit, one write-back barrier, or
/// one checkpoint — checkpoints issue two each, the record flush and the
/// anchor rewrite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalSnapshot {
    /// Page-update records appended (FirstMod + Delta, not Commits).
    pub records: u64,
    /// Total encoded bytes appended to the stream (all record kinds).
    pub record_bytes: u64,
    /// Commit records appended whose durability was then awaited.
    pub commits: u64,
    /// Commits that led a group: they performed the device sync.
    pub commit_syncs: u64,
    /// Commits served by another thread's sync — the group-commit win.
    pub group_commits: u64,
    /// Syncs forced by the WAL-before-data barrier (page write-backs).
    pub forced_syncs: u64,
    /// Syncs issued by checkpoints (two per checkpoint: record flush +
    /// anchor rewrite), including recovery's own checkpoint.
    pub checkpoint_syncs: u64,
    /// Device syncs issued on the log device, all causes.
    pub syncs: u64,
    /// Checkpoint truncations performed.
    pub checkpoints: u64,
    /// Physical page writes issued on the log device.
    pub log_page_writes: u64,
}

/// Where appends go before they are flushed.
struct AppendState {
    /// Next LSN to assign == current logical end of the stream.
    end_lsn: u64,
    /// Encoded bytes not yet written to the device; `pending[0]` is the
    /// stream byte at offset `flushed_lsn`.
    pending: Vec<u8>,
    /// Pages FirstMod-logged since the current truncation horizon, with
    /// the LSNs of their first and latest records — the horizon fixpoint
    /// needs both ends of each page's record run.
    logged: HashMap<PageId, (u64, u64)>,
    /// Commit sequence number (monotone across the log's lifetime).
    commit_seq: u64,
    /// Last transaction id handed out (monotone, reseeded at attach).
    next_txn: u64,
    /// The open transaction of each thread mid-run (commit clears all).
    thread_txns: HashMap<ThreadId, u64>,
    /// In-flight transactions → LSN of their first record.  Ordered so
    /// CheckpointBegin records enumerate deterministically.
    active: BTreeMap<u64, u64>,
}

/// Group-commit coordination.
struct IoState {
    /// Everything at or below this LSN is durable on the log device.
    durable_lsn: u64,
    /// A leader is currently flushing + syncing the device.
    syncing: bool,
}

/// Device-position state, touched only by the current I/O leader.
struct FlushState {
    /// Stream offset mapping the stream onto the device (anchor `base`).
    base_lsn: u64,
    /// Logical truncation point / recovery scan start (anchor `start`).
    /// Invariant: `base_lsn <= start_lsn <= flushed_lsn`, and it only
    /// moves forward.
    start_lsn: u64,
    /// Stream bytes `[base_lsn, flushed_lsn)` have been written to device
    /// pages (though they are only *durable* up to the last sync).
    flushed_lsn: u64,
    /// Bytes of the partially-filled tail page already written to the
    /// device: every rewrite of that page must repeat them verbatim.
    partial: Vec<u8>,
}

/// Append-only page-redo log on a dedicated block device.  Created via
/// [`crate::buffer::BufferPool::new_durable`]; shared by reference through
/// [`crate::buffer::BufferPool::wal`].
pub struct Wal {
    disk: Box<dyn DiskManager>,
    page_size: usize,
    append: Mutex<AppendState>,
    io: Mutex<IoState>,
    cv: Condvar,
    flush: Mutex<FlushState>,
    stats: WalStats,
    recovered: Mutex<Option<RecoveredLog>>,
}

enum SyncCause {
    Commit,
    Forced,
}

impl Wal {
    /// Opens (or initializes) the log on `disk`.  A non-empty device must
    /// carry a valid anchor; the record stream is scanned up to the first
    /// torn/stale record and the result parked for `BufferPool::recover`.
    /// Appends resume at the last commit boundary.
    pub(crate) fn attach(disk: Box<dyn DiskManager>) -> Result<Wal> {
        let page_size = disk.page_size();
        if page_size < ANCHOR_LEN {
            return Err(Error::InvalidArgument(format!(
                "WAL device page size {page_size} smaller than the anchor"
            )));
        }
        let (base_lsn, start_lsn, scan) = if disk.num_pages() == 0 {
            disk.allocate_page()?;
            write_anchor(&*disk, page_size, 0, 0)?;
            disk.sync()?;
            (0, 0, ScanResult::empty(0))
        } else {
            let mut anchor = vec![0u8; page_size];
            disk.read_page(PageId(0), &mut anchor)?;
            if get_u32(&anchor, 0) != WAL_MAGIC {
                return Err(Error::Corrupt("WAL anchor magic mismatch".into()));
            }
            let mut h = Fnv::new();
            h.update(&anchor[..24]);
            if get_u64(&anchor, 24) != h.finish() {
                return Err(Error::Corrupt("WAL anchor checksum mismatch".into()));
            }
            if get_u16(&anchor, 4) != WAL_VERSION {
                return Err(Error::Corrupt(format!(
                    "WAL anchor version {} (expected {WAL_VERSION})",
                    get_u16(&anchor, 4)
                )));
            }
            let base = get_u64(&anchor, 8);
            let start = get_u64(&anchor, 16);
            if start < base {
                return Err(Error::Corrupt("WAL anchor start below base".into()));
            }
            let scan = scan_records(&*disk, page_size, base, start);
            (base, start, scan)
        };
        let ScanResult { records, committed, committed_end, max_seq, max_txn } = scan;
        // The durable bytes of the page holding the resume position: the
        // prefix every tail-page rewrite must carry.
        let rel = committed_end - base_lsn;
        let tail_off = (rel % page_size as u64) as usize;
        let mut partial = Vec::new();
        if tail_off > 0 {
            let page = PageId(1 + rel / page_size as u64);
            let mut buf = vec![0u8; page_size];
            disk.read_page(page, &mut buf)?;
            partial.extend_from_slice(&buf[..tail_off]);
        }
        let recovered =
            if records.is_empty() { None } else { Some(RecoveredLog { records, committed }) };
        Ok(Wal {
            disk,
            page_size,
            append: Mutex::new(AppendState {
                end_lsn: committed_end,
                pending: Vec::new(),
                logged: HashMap::new(),
                // Resume both monotone sequences above anything the scan
                // saw, so retained generations never observe a regression.
                commit_seq: max_seq,
                next_txn: max_txn,
                thread_txns: HashMap::new(),
                active: BTreeMap::new(),
            }),
            io: Mutex::new(IoState { durable_lsn: committed_end, syncing: false }),
            cv: Condvar::new(),
            flush: Mutex::new(FlushState {
                base_lsn,
                start_lsn,
                flushed_lsn: committed_end,
                partial,
            }),
            stats: WalStats::default(),
            recovered: Mutex::new(recovered),
        })
    }

    /// Takes the log contents found at attach time (once).
    pub(crate) fn take_recovered(&self) -> Option<RecoveredLog> {
        self.recovered.lock().take()
    }

    /// Current counters.
    pub fn stats(&self) -> WalSnapshot {
        let s = &self.stats;
        WalSnapshot {
            records: s.records.load(Ordering::Acquire),
            record_bytes: s.record_bytes.load(Ordering::Acquire),
            commits: s.commits.load(Ordering::Acquire),
            commit_syncs: s.commit_syncs.load(Ordering::Acquire),
            group_commits: s.group_commits.load(Ordering::Acquire),
            forced_syncs: s.forced_syncs.load(Ordering::Acquire),
            checkpoint_syncs: s.checkpoint_syncs.load(Ordering::Acquire),
            syncs: s.syncs.load(Ordering::Acquire),
            checkpoints: s.checkpoints.load(Ordering::Acquire),
            log_page_writes: s.log_page_writes.load(Ordering::Acquire),
        }
    }

    /// Logical end of the record stream (next LSN to be assigned).
    pub fn end_lsn(&self) -> u64 {
        self.append.lock().end_lsn
    }

    /// Everything at or below this LSN is durable on the log device.
    pub fn durable_lsn(&self) -> u64 {
        self.io.lock().durable_lsn
    }

    /// Appends a redo record for an update of `page` from image `old` to
    /// image `new`.  Returns the record's end LSN — the page's new LSN
    /// stamp — or 0 if the images are identical (nothing to log).  The
    /// record is buffered in memory; durability comes from [`Wal::commit`]
    /// or [`Wal::make_durable`].
    pub fn log_update(&self, page: PageId, old: &[u8], new: &[u8]) -> Result<u64> {
        if old.len() != new.len() || old.len() != self.page_size {
            return Err(Error::InvalidArgument(format!(
                "log_update image sizes {}/{} != page size {}",
                old.len(),
                new.len(),
                self.page_size
            )));
        }
        let Some(first) = old.iter().zip(new.iter()).position(|(a, b)| a != b) else {
            return Ok(0);
        };
        let last = (first..old.len()).rev().find(|&i| old[i] != new[i]).expect("diff exists");
        let delta = &new[first..=last];
        let page_bytes = page.raw().to_le_bytes();
        let off_bytes = (first as u32).to_le_bytes();
        let len_bytes = (delta.len() as u32).to_le_bytes();

        let mut ap = self.append.lock();
        let lsn = ap.end_lsn;
        // Transaction identity is thread-keyed: the first update after a
        // commit boundary opens a fresh run for the calling thread.
        let tid = std::thread::current().id();
        let txn = match ap.thread_txns.get(&tid) {
            Some(&txn) => txn,
            None => {
                ap.next_txn += 1;
                let txn = ap.next_txn;
                ap.thread_txns.insert(tid, txn);
                txn
            }
        };
        ap.active.entry(txn).or_insert(lsn);
        let first_mod = match ap.logged.entry(page) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().1 = lsn;
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((lsn, lsn));
                true
            }
        };
        let txn_bytes = txn.to_le_bytes();
        let (kind, body_parts): (u8, Vec<&[u8]>) = if first_mod {
            (KIND_FIRST_MOD, vec![&page_bytes, &txn_bytes, &off_bytes, &len_bytes, old, delta])
        } else {
            (KIND_DELTA, vec![&page_bytes, &txn_bytes, &off_bytes, &len_bytes, delta])
        };
        let end = encode_record(&mut ap.pending, lsn, kind, &body_parts);
        ap.end_lsn = end;
        self.stats.records.fetch_add(1, Ordering::Release);
        self.stats.record_bytes.fetch_add(end - lsn, Ordering::Release);
        Ok(end)
    }

    /// Appends a Commit record and group-commits it: returns once the
    /// whole stream up to (and including) the record is durable.  Returns
    /// the commit's end LSN.
    pub fn commit(&self) -> Result<u64> {
        let target = {
            let mut ap = self.append.lock();
            ap.commit_seq += 1;
            let txn = ap.thread_txns.get(&std::thread::current().id()).copied().unwrap_or_default();
            let seq_bytes = ap.commit_seq.to_le_bytes();
            let txn_bytes = txn.to_le_bytes();
            let lsn = ap.end_lsn;
            let end = encode_record(&mut ap.pending, lsn, KIND_COMMIT, &[&seq_bytes, &txn_bytes]);
            ap.end_lsn = end;
            // A commit boundary covers everything appended so far (module
            // docs), so every in-flight run closes here — no transaction
            // stays active across it.
            ap.thread_txns.clear();
            ap.active.clear();
            self.stats.record_bytes.fetch_add(end - lsn, Ordering::Release);
            end
        };
        self.stats.commits.fetch_add(1, Ordering::Release);
        self.make_durable_as(target, SyncCause::Commit)?;
        Ok(target)
    }

    /// Forces the log durable up to `lsn` — the write-back barrier used by
    /// the buffer pool before any data-page device write.
    pub fn make_durable(&self, lsn: u64) -> Result<()> {
        self.make_durable_as(lsn, SyncCause::Forced)
    }

    /// Leader/follower durability: the caller either finds `target`
    /// already durable, waits out an in-flight sync, or becomes the
    /// leader and flushes + syncs everything appended so far.
    fn make_durable_as(&self, target: u64, cause: SyncCause) -> Result<()> {
        let mut led = false;
        let mut io = self.io.lock();
        loop {
            if io.durable_lsn >= target {
                if matches!(cause, SyncCause::Commit) && !led {
                    self.stats.group_commits.fetch_add(1, Ordering::Release);
                }
                return Ok(());
            }
            if io.syncing {
                io = self.cv.wait(io).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            io.syncing = true;
            drop(io);
            let res = self.flush_and_sync();
            io = self.io.lock();
            io.syncing = false;
            match res {
                Ok(durable) => {
                    if durable > io.durable_lsn {
                        io.durable_lsn = durable;
                    }
                    led = true;
                    match cause {
                        SyncCause::Commit => {
                            self.stats.commit_syncs.fetch_add(1, Ordering::Release)
                        }
                        SyncCause::Forced => {
                            self.stats.forced_syncs.fetch_add(1, Ordering::Release)
                        }
                    };
                    self.cv.notify_all();
                }
                Err(e) => {
                    self.cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Fuzzy checkpoint: truncates the log down to a horizon that spares
    /// every in-flight writer's rollback pre-images.  `flushed_fence` is
    /// the caller's `end_lsn()` sample taken *before* it wrote back dirty
    /// data pages (normally `Database::checkpoint`): every record below
    /// the fence describes an update whose page has reached the data
    /// device, so such records are truncatable once no open transaction
    /// or straddling page run needs them.  Callers need **not** be
    /// quiescent — commits, updates, and this checkpoint interleave
    /// freely; a quiescent instant is merely detected and rewarded with
    /// the full physical rewind (log pages reused from offset 0).
    pub fn checkpoint(&self, flushed_fence: u64) -> Result<()> {
        // Become the exclusive I/O leader.
        let mut io = self.io.lock();
        while io.syncing {
            io = self.cv.wait(io).unwrap_or_else(PoisonError::into_inner);
        }
        io.syncing = true;
        drop(io);
        let res = self.checkpoint_inner(flushed_fence);
        let mut io = self.io.lock();
        io.syncing = false;
        if let Ok(end) = res {
            if end > io.durable_lsn {
                io.durable_lsn = end;
            }
        }
        self.cv.notify_all();
        drop(io);
        res.map(|_| ())
    }

    /// Leader-context body of [`Wal::checkpoint`].
    fn checkpoint_inner(&self, flushed_fence: u64) -> Result<u64> {
        // A stale fence (from before a concurrent checkpoint advanced the
        // start) must never move the start backwards: floor it.
        let start_floor = self.flush.lock().start_lsn;
        let eff_fence = flushed_fence.max(start_floor);
        // Phase 1, under the append lock: pick the truncation horizon,
        // append a CheckpointBegin if any writer is in flight, and re-key
        // the FirstMod dedup to the horizon.
        let horizon = {
            let mut ap = self.append.lock();
            let begin = ap.end_lsn;
            let quiescent_now = ap.active.is_empty() && eff_fence >= begin;
            let mut h = eff_fence.min(begin);
            if let Some(&first) = ap.active.values().min() {
                h = h.min(first);
            }
            // No page's record run may straddle the horizon: a surviving
            // Delta would orphan its truncated FirstMod.  Lower h to the
            // FirstMod of any straddler until a fixpoint (h only
            // decreases, bounded by the oldest FirstMod).
            loop {
                let straddler = ap
                    .logged
                    .values()
                    .filter(|&&(first, last)| first < h && last >= h)
                    .map(|&(first, _)| first)
                    .min();
                match straddler {
                    Some(first) => h = first,
                    None => break,
                }
            }
            debug_assert!(h >= start_floor, "truncation horizon may only move forward");
            if !quiescent_now {
                let listed = ap.active.len().min(MAX_CKPT_TXNS);
                let mut body = Vec::with_capacity(12 + 16 * listed);
                body.extend_from_slice(&h.to_le_bytes());
                body.extend_from_slice(&(listed as u32).to_le_bytes());
                for (&txn, &first) in ap.active.iter().take(listed) {
                    body.extend_from_slice(&txn.to_le_bytes());
                    body.extend_from_slice(&first.to_le_bytes());
                }
                let end = encode_record(&mut ap.pending, begin, KIND_CHECKPOINT, &[&body]);
                ap.end_lsn = end;
                self.stats.record_bytes.fetch_add(end - begin, Ordering::Release);
            }
            // Pages whose whole run sits below the horizon are truncated:
            // their next update must log a fresh pre-image.  (The fixpoint
            // above guarantees `first >= h` keeps exactly the survivors.)
            ap.logged.retain(|_, &mut (first, _)| first >= h);
            h
        };
        let end = self.flush_and_sync()?;
        self.stats.checkpoint_syncs.fetch_add(1, Ordering::Release);
        let mut fs = self.flush.lock();
        debug_assert_eq!(fs.flushed_lsn, end);
        // Phase 2: if this is still a quiescent instant — no open
        // transaction and nothing appended past the fence (in particular
        // no CheckpointBegin, which is only logged when writers are in
        // flight) — the whole flushed stream is committed and on the data
        // device, so the generation physically rewinds.  Otherwise only
        // the logical start advances to the horizon; the device mapping
        // (base) and every record at or above the horizon stay put.
        let rewind = {
            let ap = self.append.lock();
            ap.active.is_empty() && ap.end_lsn == end && eff_fence >= end
        };
        let (base, start) = if rewind { (end, end) } else { (fs.base_lsn, horizon) };
        // Persist the new anchor before adopting it: a crash between the
        // two syncs leaves the old anchor + old records, which is still a
        // consistent (pre-checkpoint) log.
        write_anchor(&*self.disk, self.page_size, base, start)?;
        self.disk.sync()?;
        fs.base_lsn = base;
        fs.start_lsn = start;
        if rewind {
            fs.partial.clear();
            self.append.lock().logged.clear();
        }
        self.stats.checkpoints.fetch_add(1, Ordering::Release);
        self.stats.syncs.fetch_add(1, Ordering::Release);
        self.stats.checkpoint_syncs.fetch_add(1, Ordering::Release);
        Ok(end)
    }

    /// Writes all pending stream bytes to log pages and syncs the device.
    /// Called only with `io.syncing` held by this thread.  On failure —
    /// including a failed sync *after* the page writes landed — the
    /// pending buffer, `flushed_lsn`, and `partial` are all untouched, so
    /// nothing is published and a retry rewrites the identical bytes.
    fn flush_and_sync(&self) -> Result<u64> {
        let mut fs = self.flush.lock();
        let (bytes, target_end) = {
            let ap = self.append.lock();
            (ap.pending.clone(), ap.end_lsn)
        };
        debug_assert_eq!(fs.flushed_lsn + bytes.len() as u64, target_end);
        let new_partial =
            if bytes.is_empty() { None } else { Some(self.write_stream(&fs, &bytes)?) };
        self.disk.sync()?;
        self.stats.syncs.fetch_add(1, Ordering::Release);
        self.append.lock().pending.drain(..bytes.len());
        fs.flushed_lsn = target_end;
        if let Some(partial) = new_partial {
            fs.partial = partial;
        }
        Ok(target_end)
    }

    /// Writes `bytes` (the stream range starting at `fs.flushed_lsn`) to
    /// the device, rewriting the partial tail page with its durable
    /// prefix.  Returns the new tail page's durable prefix; the caller
    /// installs it into `fs.partial` only once the device sync succeeds —
    /// a dying sync must leave the whole flush state untouched.
    fn write_stream(&self, fs: &FlushState, bytes: &[u8]) -> Result<Vec<u8>> {
        let ps = self.page_size;
        let rel0 = (fs.flushed_lsn - fs.base_lsn) as usize;
        debug_assert_eq!(rel0 % ps, fs.partial.len() % ps);
        let mut scratch = vec![0u8; ps];
        let mut written = 0usize;
        while written < bytes.len() {
            let rel = rel0 + written;
            let page_index = 1 + (rel / ps) as u64;
            let off = rel % ps;
            let n = (ps - off).min(bytes.len() - written);
            scratch.fill(0);
            if off > 0 {
                // Only possible on the first page of this flush.
                scratch[..off].copy_from_slice(&fs.partial);
            }
            scratch[off..off + n].copy_from_slice(&bytes[written..written + n]);
            while self.disk.num_pages() <= page_index {
                self.disk.allocate_page()?;
            }
            self.disk.write_page(PageId(page_index), &scratch)?;
            self.stats.log_page_writes.fetch_add(1, Ordering::Release);
            written += n;
        }
        // Success: return the durable prefix of the new tail page.
        let end_rel = rel0 + bytes.len();
        let tail_off = end_rel % ps;
        let new_partial = if tail_off == 0 {
            Vec::new()
        } else {
            let page_start = end_rel - tail_off;
            if page_start >= rel0 {
                bytes[page_start - rel0..].to_vec()
            } else {
                let mut p = fs.partial.clone();
                p.extend_from_slice(bytes);
                p
            }
        };
        Ok(new_partial)
    }
}

/// Encodes one record into `out`, returning the new stream end.
fn encode_record(out: &mut Vec<u8>, lsn: u64, kind: u8, body_parts: &[&[u8]]) -> u64 {
    let body_len: usize = body_parts.iter().map(|p| p.len()).sum();
    let crc = record_checksum(lsn, kind, body_parts);
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&crc.to_le_bytes());
    for part in body_parts {
        out.extend_from_slice(part);
    }
    lsn + (REC_HDR + body_len) as u64
}

fn write_anchor(disk: &dyn DiskManager, page_size: usize, base: u64, start: u64) -> Result<()> {
    debug_assert!(start >= base);
    let mut page = vec![0u8; page_size];
    put_u32(&mut page, 0, WAL_MAGIC);
    put_u16(&mut page, 4, WAL_VERSION);
    put_u64(&mut page, 8, base);
    put_u64(&mut page, 16, start);
    let mut h = Fnv::new();
    h.update(&page[..24]);
    put_u64(&mut page, 24, h.finish());
    disk.write_page(PageId(0), &page)
}

/// Sequential page-at-a-time reader over the log stream.
struct StreamReader<'a> {
    disk: &'a dyn DiskManager,
    ps: usize,
    base: u64,
    cached_index: u64,
    cache: Vec<u8>,
}

impl<'a> StreamReader<'a> {
    fn new(disk: &'a dyn DiskManager, ps: usize, base: u64) -> Self {
        StreamReader { disk, ps, base, cached_index: 0, cache: vec![0u8; ps] }
    }

    /// Reads `len` stream bytes at `pos` into `out`; `false` if the range
    /// runs past the device (i.e. the stream ends here).
    fn read(&mut self, pos: u64, len: usize, out: &mut Vec<u8>) -> bool {
        out.clear();
        let mut rel = (pos - self.base) as usize;
        let mut remaining = len;
        while remaining > 0 {
            let page_index = 1 + (rel / self.ps) as u64;
            let off = rel % self.ps;
            if page_index >= self.disk.num_pages() {
                return false;
            }
            if self.cached_index != page_index {
                if self.disk.read_page(PageId(page_index), &mut self.cache).is_err() {
                    return false;
                }
                self.cached_index = page_index;
            }
            let n = (self.ps - off).min(remaining);
            out.extend_from_slice(&self.cache[off..off + n]);
            rel += n;
            remaining -= n;
        }
        true
    }
}

/// What a log scan found: the valid record prefix plus the high-water
/// marks of the monotone sequences embedded in it.
struct ScanResult {
    records: Vec<WalRecord>,
    /// Leading records up to and including the last Commit.
    committed: usize,
    /// Stream position just past that last Commit (== `start` if none).
    committed_end: u64,
    /// Highest commit sequence number seen (0 if none).
    max_seq: u64,
    /// Highest transaction id seen (0 if none).
    max_txn: u64,
}

impl ScanResult {
    fn empty(start: u64) -> ScanResult {
        ScanResult {
            records: Vec::new(),
            committed: 0,
            committed_end: start,
            max_seq: 0,
            max_txn: 0,
        }
    }
}

/// Scans the record stream from `start` (device-mapped via `base`) until
/// the LSN/checksum chain breaks.
fn scan_records(disk: &dyn DiskManager, ps: usize, base: u64, start: u64) -> ScanResult {
    let mut reader = StreamReader::new(disk, ps, base);
    let mut out = ScanResult::empty(start);
    let mut pos = start;
    let mut hdr = Vec::new();
    let mut body = Vec::new();
    let max_body = (24 + 2 * ps).max(12 + 16 * MAX_CKPT_TXNS);
    loop {
        if !reader.read(pos, REC_HDR, &mut hdr) {
            break;
        }
        let lsn = get_u64(&hdr, 0);
        let body_len = get_u32(&hdr, 8) as usize;
        let kind = hdr[12];
        let crc = get_u64(&hdr, 13);
        if lsn != pos || body_len > max_body || !(KIND_FIRST_MOD..=KIND_CHECKPOINT).contains(&kind)
        {
            break;
        }
        if !reader.read(pos + REC_HDR as u64, body_len, &mut body) {
            break;
        }
        if record_checksum(lsn, kind, &[&body]) != crc {
            break;
        }
        let Some(rec) = decode_body(kind, &body, ps) else {
            break;
        };
        let end = pos + (REC_HDR + body_len) as u64;
        match &rec {
            WalRecord::FirstMod { txn, .. } | WalRecord::Delta { txn, .. } => {
                out.max_txn = out.max_txn.max(*txn);
            }
            WalRecord::Commit { seq, txn } => {
                out.max_seq = out.max_seq.max(*seq);
                out.max_txn = out.max_txn.max(*txn);
            }
            WalRecord::Checkpoint { horizon, active } => {
                // A horizon past its own record is nonsense: treat it as
                // the end of the valid chain.
                if *horizon > lsn {
                    break;
                }
                for &(txn, _) in active {
                    out.max_txn = out.max_txn.max(txn);
                }
            }
        }
        let is_commit = matches!(rec, WalRecord::Commit { .. });
        out.records.push(rec);
        if is_commit {
            out.committed = out.records.len();
            out.committed_end = end;
        }
        pos = end;
    }
    out
}

fn decode_body(kind: u8, body: &[u8], ps: usize) -> Option<WalRecord> {
    match kind {
        KIND_COMMIT => {
            if body.len() != 16 {
                return None;
            }
            Some(WalRecord::Commit { seq: get_u64(body, 0), txn: get_u64(body, 8) })
        }
        KIND_CHECKPOINT => {
            if body.len() < 12 {
                return None;
            }
            let horizon = get_u64(body, 0);
            let n = get_u32(body, 8) as usize;
            if n > MAX_CKPT_TXNS || body.len() != 12 + 16 * n {
                return None;
            }
            let active =
                (0..n).map(|i| (get_u64(body, 12 + 16 * i), get_u64(body, 20 + 16 * i))).collect();
            Some(WalRecord::Checkpoint { horizon, active })
        }
        KIND_FIRST_MOD | KIND_DELTA => {
            if body.len() < 24 {
                return None;
            }
            let page = PageId(get_u64(body, 0));
            let txn = get_u64(body, 8);
            let delta_off = get_u32(body, 16) as usize;
            let delta_len = get_u32(body, 20) as usize;
            if delta_off + delta_len > ps {
                return None;
            }
            if kind == KIND_FIRST_MOD {
                if body.len() != 24 + ps + delta_len {
                    return None;
                }
                Some(WalRecord::FirstMod {
                    page,
                    txn,
                    before: body[24..24 + ps].to_vec(),
                    delta_off,
                    delta: body[24 + ps..].to_vec(),
                })
            } else {
                if body.len() != 24 + delta_len {
                    return None;
                }
                Some(WalRecord::Delta { page, txn, delta_off, delta: body[24..].to_vec() })
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use std::sync::Arc;

    fn fresh_wal(ps: usize) -> (Arc<MemDisk>, Wal) {
        let disk = Arc::new(MemDisk::new(ps));
        let wal = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        (disk, wal)
    }

    #[test]
    fn identical_images_log_nothing() {
        let (_d, wal) = fresh_wal(128);
        let img = vec![3u8; 128];
        assert_eq!(wal.log_update(PageId(5), &img, &img).unwrap(), 0);
        assert_eq!(wal.stats().records, 0);
        assert_eq!(wal.end_lsn(), 0);
    }

    #[test]
    fn first_mod_then_delta_then_commit_roundtrips_through_scan() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut v1 = old.clone();
        v1[10..20].copy_from_slice(&[7u8; 10]);
        let mut v2 = v1.clone();
        v2[100] = 9;
        assert!(wal.log_update(PageId(4), &old, &v1).unwrap() > 0);
        assert!(wal.log_update(PageId(4), &v1, &v2).unwrap() > 0);
        let end = wal.commit().unwrap();
        assert_eq!(wal.durable_lsn(), end);
        let s = wal.stats();
        assert_eq!((s.records, s.commits, s.commit_syncs, s.group_commits), (2, 1, 1, 0));
        drop(wal);

        // A fresh attach finds the full committed stream.
        let scan = scan_records(&*disk, 128, 0, 0);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.committed, 3);
        assert_eq!(scan.committed_end, end);
        assert_eq!((scan.max_seq, scan.max_txn), (1, 1));
        assert!(matches!(&scan.records[0],
            WalRecord::FirstMod { page, txn: 1, before, delta_off, delta }
            if *page == PageId(4) && before == &old && *delta_off == 10 && delta == &vec![7u8; 10]));
        assert!(matches!(&scan.records[1],
            WalRecord::Delta { page, txn: 1, delta_off, delta }
            if *page == PageId(4) && *delta_off == 100 && delta == &vec![9u8]));
        assert!(matches!(&scan.records[2], WalRecord::Commit { seq: 1, txn: 1 }));
    }

    #[test]
    fn uncommitted_tail_is_dropped_on_attach() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[0] = 1;
        wal.log_update(PageId(2), &old, &new).unwrap();
        let committed_end = wal.commit().unwrap();
        // An uncommitted record past the commit, flushed but not committed.
        let mut newer = new.clone();
        newer[1] = 2;
        let lsn = wal.log_update(PageId(2), &new, &newer).unwrap();
        wal.make_durable(lsn).unwrap();
        drop(wal);

        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal2.take_recovered().unwrap();
        assert_eq!(log.records.len(), 3, "commit + committed mod + tail mod");
        assert_eq!(log.committed, 2);
        assert_eq!(wal2.end_lsn(), committed_end, "appends resume at the commit boundary");
    }

    #[test]
    fn checkpoint_truncates_and_old_records_are_not_rescanned() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[5] = 5;
        wal.log_update(PageId(9), &old, &new).unwrap();
        wal.commit().unwrap();
        wal.checkpoint(wal.end_lsn()).unwrap();
        assert_eq!(wal.stats().checkpoints, 1);
        drop(wal);

        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        assert!(wal2.take_recovered().is_none(), "truncated log has no records");
        // The new generation reuses pages from offset 0 without tripping
        // over the stale record bytes still physically present.
        let mut v2 = new.clone();
        v2[6] = 6;
        wal2.log_update(PageId(9), &new, &v2).unwrap();
        let end = wal2.commit().unwrap();
        drop(wal2);
        let wal3 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal3.take_recovered().unwrap();
        assert_eq!(log.committed, 2);
        assert_eq!(wal3.end_lsn(), end);
    }

    #[test]
    fn records_spanning_many_pages_survive() {
        // Page size 128 but FirstMod bodies are > 128 bytes: every record
        // spans pages, partial tail pages are append-rewritten.
        let (disk, wal) = fresh_wal(128);
        let mut prev = vec![0u8; 128];
        let mut ends = Vec::new();
        for i in 0..20u8 {
            let mut next = prev.clone();
            next[(i as usize * 5) % 128] = i + 1;
            assert!(wal.log_update(PageId(u64::from(i) % 3), &prev, &next).unwrap() > 0);
            ends.push(wal.commit().unwrap());
            prev = next;
        }
        drop(wal);
        let scan = scan_records(&*disk, 128, 0, 0);
        assert_eq!(scan.records.len(), 40, "20 mods + 20 commits");
        assert_eq!(scan.committed, 40);
        assert_eq!(scan.committed_end, *ends.last().unwrap());
    }

    #[test]
    fn torn_tail_page_breaks_the_chain_cleanly() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[0] = 1;
        wal.log_update(PageId(1), &old, &new).unwrap();
        wal.commit().unwrap();
        let end = wal.end_lsn();
        drop(wal);
        // Corrupt one byte in the middle of the committed record's body.
        let victim = PageId(1 + (end / 2) / 128);
        let mut page = vec![0u8; 128];
        disk.read_page(victim, &mut page).unwrap();
        page[(end / 2 % 128) as usize] ^= 0xFF;
        disk.write_page(victim, &page).unwrap();
        let scan = scan_records(&*disk, 128, 0, 0);
        assert_eq!(scan.records.len(), 0, "checksum break stops the scan");
        assert_eq!(scan.committed, 0);
    }

    #[test]
    fn commit_accounting_identity_holds_under_threads() {
        let wal = Arc::new({
            let disk = MemDisk::new(256);
            Wal::attach(Box::new(disk)).unwrap()
        });
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    let mut prev = vec![0u8; 256];
                    for i in 0..50u8 {
                        let mut next = prev.clone();
                        next[t as usize * 8] = i.wrapping_add(1);
                        wal.log_update(PageId(t), &prev, &next).unwrap();
                        wal.commit().unwrap();
                        prev = next;
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let s = wal.stats();
        assert_eq!(s.commits, 200);
        assert_eq!(s.commit_syncs + s.group_commits, s.commits, "exact commit accounting");
        assert_eq!(s.syncs, s.commit_syncs + s.forced_syncs + s.checkpoint_syncs);
        assert_eq!(wal.durable_lsn(), wal.end_lsn());
    }

    #[test]
    fn fuzzy_checkpoint_spares_the_open_transactions_records() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut v1 = old.clone();
        v1[0] = 1;
        // A committed transaction, fully flushed...
        wal.log_update(PageId(1), &old, &v1).unwrap();
        wal.commit().unwrap();
        // ...then an open transaction whose record reaches the device.
        let lsn = wal.log_update(PageId(2), &old, &v1).unwrap();
        wal.make_durable(lsn).unwrap();
        let fence = wal.end_lsn();
        wal.checkpoint(fence).unwrap();
        let s = wal.stats();
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.checkpoint_syncs, 2, "record flush + anchor rewrite");
        assert_eq!(s.syncs, s.commit_syncs + s.forced_syncs + s.checkpoint_syncs);
        drop(wal);

        // The committed generation was truncated, but the open
        // transaction's FirstMod pre-image survives for rollback, followed
        // by the CheckpointBegin naming it.
        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal2.take_recovered().unwrap();
        assert_eq!(log.committed, 0, "nothing at or above the horizon is committed");
        assert_eq!(log.records.len(), 2);
        assert!(matches!(&log.records[0],
            WalRecord::FirstMod { page, txn, before, .. }
            if *page == PageId(2) && *txn == 2 && before == &old));
        assert!(matches!(&log.records[1],
            WalRecord::Checkpoint { active, .. } if active.len() == 1 && active[0].0 == 2));
    }

    #[test]
    fn fuzzy_then_quiescent_checkpoint_rewinds_the_device() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut v1 = old.clone();
        v1[3] = 3;
        // Open transaction at checkpoint time: horizon pins to its first
        // record (LSN 0), so the start cannot move at all.
        wal.log_update(PageId(5), &old, &v1).unwrap();
        wal.checkpoint(wal.end_lsn()).unwrap();
        assert_eq!(wal.stats().checkpoints, 1);
        // Commit closes the run; a second checkpoint finds the quiescent
        // instant and physically rewinds the generation.
        wal.commit().unwrap();
        wal.checkpoint(wal.end_lsn()).unwrap();
        drop(wal);
        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        assert!(wal2.take_recovered().is_none(), "rewound log has no records");
        // Page reuse from offset 0 still works after the fuzzy interlude.
        let mut v2 = v1.clone();
        v2[4] = 4;
        wal2.log_update(PageId(5), &v1, &v2).unwrap();
        let end = wal2.commit().unwrap();
        drop(wal2);
        let wal3 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal3.take_recovered().unwrap();
        assert_eq!(log.committed, 2);
        assert_eq!(wal3.end_lsn(), end);
    }

    #[test]
    fn straddling_page_run_drags_the_horizon_down() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut v1 = old.clone();
        v1[7] = 7;
        let mut v2 = v1.clone();
        v2[8] = 8;
        // FirstMod below the fence, Delta above it, then a commit: the
        // fixpoint must refuse to orphan the Delta and keep everything.
        wal.log_update(PageId(7), &old, &v1).unwrap();
        let fence = wal.end_lsn();
        wal.log_update(PageId(7), &v1, &v2).unwrap();
        wal.commit().unwrap();
        wal.checkpoint(fence).unwrap();
        drop(wal);
        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal2.take_recovered().unwrap();
        assert_eq!(log.committed, 3, "FirstMod + Delta + Commit all survive");
        assert!(
            matches!(&log.records[0], WalRecord::FirstMod { page, .. } if *page == PageId(7)),
            "the pre-image stayed below the horizon"
        );
    }
}
