//! Page-oriented write-ahead log with group commit and redo recovery.
//!
//! The WAL lives on its **own block device** beside the data device, so
//! the data file keeps the exact layout the paper experiments were
//! calibrated against (header at page 0, etc.).  Page 0 of the log device
//! is an **anchor** naming the current log generation; pages 1.. hold a
//! byte stream of physical redo records.
//!
//! # Log stream and LSNs
//!
//! An LSN is a logical byte offset into the append-only record stream.
//! The anchor's `base_lsn` maps the stream onto the device: stream byte
//! `s` lives at offset `(s − base_lsn) % page_size` of log page
//! `1 + (s − base_lsn) / page_size`.  Each record is framed as
//!
//! ```text
//! lsn u64 | body_len u32 | kind u8 | checksum u64 | body …
//! ```
//!
//! with the checksum (FNV-1a 64) covering `(lsn, kind, body)`.  Three
//! record kinds exist:
//!
//! * **FirstMod** — the *first* modification of a page since the last
//!   checkpoint: the full pre-image of the page plus the byte-range delta
//!   of this update.  Redo never needs the data device for such a page.
//! * **Delta** — a later modification: byte-range delta only.
//! * **Commit** — a transaction boundary; recovery replays exactly the
//!   records up to the last durable Commit.
//!
//! Appending buffers bytes in memory; they reach the device when a commit
//! (or a write-back barrier) forces the log. The partially-filled tail
//! page is append-rewritten: every rewrite carries the identical durable
//! prefix, so under the torn-write model (prefix of sectors persists) a
//! torn tail rewrite can only damage bytes past the last sync — exactly
//! the bytes recovery discards anyway when the checksum chain breaks.
//!
//! # The WAL-before-data invariant
//!
//! The buffer pool stamps each frame with the end-LSN of its latest log
//! record and calls [`Wal::make_durable`] before any device write-back
//! ([`crate::buffer::BufferPool`] does this at its three write-back
//! sites).  Hence no page image whose update is not yet in the durable
//! log can reach the data device — redo can always reconstruct.
//!
//! # Group commit
//!
//! [`Wal::commit`] appends a Commit record and makes it durable with a
//! leader/follower protocol: the first committer to find no sync in
//! progress becomes the leader, flushes *everything appended so far*
//! (including other threads' records) and issues one device sync;
//! concurrent committers find their LSN already covered — or wait for the
//! in-flight sync and re-check — and complete **without their own
//! fsync**.  [`WalSnapshot`] exposes the exact accounting:
//! `commits == commit_syncs + group_commits` always holds.
//!
//! # Checkpoint and truncation
//!
//! [`Wal::checkpoint`] (called by `Database::checkpoint` *after* the pool
//! wrote back every dirty page) syncs the log, then rewrites the anchor
//! with `base_lsn` = current end of log: the whole generation of records
//! is truncated and log pages are reused from offset 0.  Stale records
//! from the previous generation cannot be mistaken for live ones: a
//! record's embedded LSN must equal its stream position, and every stream
//! position of the new generation maps to a strictly larger LSN than any
//! old record stored at the same device offset.
//!
//! # Recovery
//!
//! `Wal::attach` validates the anchor and scans the stream until the
//! LSN/checksum chain breaks, yielding the valid record prefix.
//! `BufferPool::recover` then replays all records up to the last Commit
//! into in-memory page images (FirstMod starts from its pre-image, Delta
//! applies on top), **rolls back** the uncommitted tail by restoring the
//! pre-images of pages first modified in the tail, writes every touched
//! page to the data device, syncs, and checkpoints the log.  Pages never
//! touched since the last checkpoint are bitwise untouched on the data
//! device (write-backs happen only after their records are durable, and a
//! checkpoint only truncates after write-back), so the result equals the
//! committed prefix of history.
//!
//! Commit atomicity is defined at commit boundaries of a serialized
//! history: concurrent writers get durability (no committed record is
//! lost) but crash-atomicity of *interleaved* uncommitted work is the
//! MVCC roadmap item's business, as is checkpointing concurrently with
//! active writers.

use crate::codec::{get_u32, get_u64, put_u16, put_u32, put_u64};
use crate::disk::DiskManager;
use crate::error::{Error, Result};
use crate::page::PageId;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, PoisonError};

/// Record framing: `lsn u64 | body_len u32 | kind u8 | checksum u64`.
const REC_HDR: usize = 8 + 4 + 1 + 8;
const KIND_FIRST_MOD: u8 = 1;
const KIND_DELTA: u8 = 2;
const KIND_COMMIT: u8 = 3;

/// Anchor page layout: `magic u32 | version u16 | pad u16 | base u64 | crc u64`.
const WAL_MAGIC: u32 = 0x5249_574C; // "RIWL"
const WAL_VERSION: u16 = 1;
const ANCHOR_LEN: usize = 24;

/// Streaming FNV-1a 64 (the repo has no external checksum dependency; a
/// torn or stale record only needs to be *detected*, not authenticated).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn record_checksum(lsn: u64, kind: u8, body_parts: &[&[u8]]) -> u64 {
    let mut h = Fnv::new();
    h.update(&lsn.to_le_bytes());
    h.update(&[kind]);
    for part in body_parts {
        h.update(part);
    }
    h.finish()
}

/// A decoded log record (crate-internal: consumed by pool recovery).
#[derive(Debug, Clone)]
pub(crate) enum WalRecord {
    /// First modification of `page` since the last checkpoint: full
    /// pre-image plus this update's byte-range delta.
    FirstMod { page: PageId, before: Vec<u8>, delta_off: usize, delta: Vec<u8> },
    /// Later modification of `page`: byte-range delta only.
    Delta { page: PageId, delta_off: usize, delta: Vec<u8> },
    /// Transaction boundary.
    Commit { seq: u64 },
}

/// The valid log contents found at attach time, for `BufferPool::recover`.
pub(crate) struct RecoveredLog {
    /// All records of the valid prefix, in LSN order.
    pub records: Vec<WalRecord>,
    /// Number of leading records up to and including the last Commit.
    pub committed: usize,
}

/// What redo recovery did, as reported by `BufferPool::recover`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid records found in the log tail.
    pub records_scanned: usize,
    /// Records replayed (up to and including the last Commit).
    pub committed_records: usize,
    /// Records past the last Commit (rolled back).
    pub tail_records: usize,
    /// Commit boundaries replayed.
    pub commits: u64,
    /// Pages rebuilt from committed log records.
    pub pages_redone: usize,
    /// Pages restored to their pre-images (first modified in the tail).
    pub pages_rolled_back: usize,
}

/// Monotonic WAL counters (atomics, like [`crate::stats::IoStats`]).
#[derive(Default)]
struct WalStats {
    records: AtomicU64,
    record_bytes: AtomicU64,
    commits: AtomicU64,
    commit_syncs: AtomicU64,
    group_commits: AtomicU64,
    forced_syncs: AtomicU64,
    syncs: AtomicU64,
    checkpoints: AtomicU64,
    log_page_writes: AtomicU64,
}

/// Point-in-time copy of the WAL counters.
///
/// Invariants (single snapshot, quiescent log):
/// `commits == commit_syncs + group_commits` (every successful commit
/// either led one fsync or was covered by someone else's), and
/// `syncs == commit_syncs + forced_syncs + checkpoints`-led syncs plus
/// recovery's own checkpoint sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalSnapshot {
    /// Page-update records appended (FirstMod + Delta, not Commits).
    pub records: u64,
    /// Total encoded bytes appended to the stream (all record kinds).
    pub record_bytes: u64,
    /// Commit records appended whose durability was then awaited.
    pub commits: u64,
    /// Commits that led a group: they performed the device sync.
    pub commit_syncs: u64,
    /// Commits served by another thread's sync — the group-commit win.
    pub group_commits: u64,
    /// Syncs forced by the WAL-before-data barrier (page write-backs).
    pub forced_syncs: u64,
    /// Device syncs issued on the log device, all causes.
    pub syncs: u64,
    /// Checkpoint truncations performed.
    pub checkpoints: u64,
    /// Physical page writes issued on the log device.
    pub log_page_writes: u64,
}

/// Where appends go before they are flushed.
struct AppendState {
    /// Next LSN to assign == current logical end of the stream.
    end_lsn: u64,
    /// Encoded bytes not yet written to the device; `pending[0]` is the
    /// stream byte at offset `flushed_lsn`.
    pending: Vec<u8>,
    /// Pages already FirstMod-logged in the current checkpoint generation.
    logged: HashSet<PageId>,
    /// Commit sequence number (monotone across the log's lifetime).
    commit_seq: u64,
}

/// Group-commit coordination.
struct IoState {
    /// Everything at or below this LSN is durable on the log device.
    durable_lsn: u64,
    /// A leader is currently flushing + syncing the device.
    syncing: bool,
}

/// Device-position state, touched only by the current I/O leader.
struct FlushState {
    /// Stream offset where the current generation starts (anchor value).
    base_lsn: u64,
    /// Stream bytes `[base_lsn, flushed_lsn)` have been written to device
    /// pages (though they are only *durable* up to the last sync).
    flushed_lsn: u64,
    /// Bytes of the partially-filled tail page already written to the
    /// device: every rewrite of that page must repeat them verbatim.
    partial: Vec<u8>,
}

/// Append-only page-redo log on a dedicated block device.  Created via
/// [`crate::buffer::BufferPool::new_durable`]; shared by reference through
/// [`crate::buffer::BufferPool::wal`].
pub struct Wal {
    disk: Box<dyn DiskManager>,
    page_size: usize,
    append: Mutex<AppendState>,
    io: Mutex<IoState>,
    cv: Condvar,
    flush: Mutex<FlushState>,
    stats: WalStats,
    recovered: Mutex<Option<RecoveredLog>>,
}

enum SyncCause {
    Commit,
    Forced,
}

impl Wal {
    /// Opens (or initializes) the log on `disk`.  A non-empty device must
    /// carry a valid anchor; the record stream is scanned up to the first
    /// torn/stale record and the result parked for `BufferPool::recover`.
    /// Appends resume at the last commit boundary.
    pub(crate) fn attach(disk: Box<dyn DiskManager>) -> Result<Wal> {
        let page_size = disk.page_size();
        if page_size < ANCHOR_LEN {
            return Err(Error::InvalidArgument(format!(
                "WAL device page size {page_size} smaller than the anchor"
            )));
        }
        let (base_lsn, records, committed, committed_end) = if disk.num_pages() == 0 {
            disk.allocate_page()?;
            write_anchor(&*disk, page_size, 0)?;
            disk.sync()?;
            (0, Vec::new(), 0, 0)
        } else {
            let mut anchor = vec![0u8; page_size];
            disk.read_page(PageId(0), &mut anchor)?;
            if get_u32(&anchor, 0) != WAL_MAGIC {
                return Err(Error::Corrupt("WAL anchor magic mismatch".into()));
            }
            let mut h = Fnv::new();
            h.update(&anchor[..16]);
            if get_u64(&anchor, 16) != h.finish() {
                return Err(Error::Corrupt("WAL anchor checksum mismatch".into()));
            }
            let base = get_u64(&anchor, 8);
            let (records, committed, committed_end) = scan_records(&*disk, page_size, base);
            (base, records, committed, committed_end)
        };
        // The durable bytes of the page holding the resume position: the
        // prefix every tail-page rewrite must carry.
        let rel = committed_end - base_lsn;
        let tail_off = (rel % page_size as u64) as usize;
        let mut partial = Vec::new();
        if tail_off > 0 {
            let page = PageId(1 + rel / page_size as u64);
            let mut buf = vec![0u8; page_size];
            disk.read_page(page, &mut buf)?;
            partial.extend_from_slice(&buf[..tail_off]);
        }
        let recovered =
            if records.is_empty() { None } else { Some(RecoveredLog { records, committed }) };
        Ok(Wal {
            disk,
            page_size,
            append: Mutex::new(AppendState {
                end_lsn: committed_end,
                pending: Vec::new(),
                logged: HashSet::new(),
                commit_seq: 0,
            }),
            io: Mutex::new(IoState { durable_lsn: committed_end, syncing: false }),
            cv: Condvar::new(),
            flush: Mutex::new(FlushState { base_lsn, flushed_lsn: committed_end, partial }),
            stats: WalStats::default(),
            recovered: Mutex::new(recovered),
        })
    }

    /// Takes the log contents found at attach time (once).
    pub(crate) fn take_recovered(&self) -> Option<RecoveredLog> {
        self.recovered.lock().take()
    }

    /// Current counters.
    pub fn stats(&self) -> WalSnapshot {
        let s = &self.stats;
        WalSnapshot {
            records: s.records.load(Ordering::Acquire),
            record_bytes: s.record_bytes.load(Ordering::Acquire),
            commits: s.commits.load(Ordering::Acquire),
            commit_syncs: s.commit_syncs.load(Ordering::Acquire),
            group_commits: s.group_commits.load(Ordering::Acquire),
            forced_syncs: s.forced_syncs.load(Ordering::Acquire),
            syncs: s.syncs.load(Ordering::Acquire),
            checkpoints: s.checkpoints.load(Ordering::Acquire),
            log_page_writes: s.log_page_writes.load(Ordering::Acquire),
        }
    }

    /// Logical end of the record stream (next LSN to be assigned).
    pub fn end_lsn(&self) -> u64 {
        self.append.lock().end_lsn
    }

    /// Everything at or below this LSN is durable on the log device.
    pub fn durable_lsn(&self) -> u64 {
        self.io.lock().durable_lsn
    }

    /// Appends a redo record for an update of `page` from image `old` to
    /// image `new`.  Returns the record's end LSN — the page's new LSN
    /// stamp — or 0 if the images are identical (nothing to log).  The
    /// record is buffered in memory; durability comes from [`Wal::commit`]
    /// or [`Wal::make_durable`].
    pub fn log_update(&self, page: PageId, old: &[u8], new: &[u8]) -> Result<u64> {
        if old.len() != new.len() || old.len() != self.page_size {
            return Err(Error::InvalidArgument(format!(
                "log_update image sizes {}/{} != page size {}",
                old.len(),
                new.len(),
                self.page_size
            )));
        }
        let Some(first) = old.iter().zip(new.iter()).position(|(a, b)| a != b) else {
            return Ok(0);
        };
        let last = (first..old.len()).rev().find(|&i| old[i] != new[i]).expect("diff exists");
        let delta = &new[first..=last];
        let page_bytes = page.raw().to_le_bytes();
        let off_bytes = (first as u32).to_le_bytes();
        let len_bytes = (delta.len() as u32).to_le_bytes();

        let mut ap = self.append.lock();
        let first_mod = ap.logged.insert(page);
        let lsn = ap.end_lsn;
        let (kind, body_parts): (u8, Vec<&[u8]>) = if first_mod {
            (KIND_FIRST_MOD, vec![&page_bytes, &off_bytes, &len_bytes, old, delta])
        } else {
            (KIND_DELTA, vec![&page_bytes, &off_bytes, &len_bytes, delta])
        };
        let end = encode_record(&mut ap.pending, lsn, kind, &body_parts);
        ap.end_lsn = end;
        self.stats.records.fetch_add(1, Ordering::Release);
        self.stats.record_bytes.fetch_add(end - lsn, Ordering::Release);
        Ok(end)
    }

    /// Appends a Commit record and group-commits it: returns once the
    /// whole stream up to (and including) the record is durable.  Returns
    /// the commit's end LSN.
    pub fn commit(&self) -> Result<u64> {
        let target = {
            let mut ap = self.append.lock();
            ap.commit_seq += 1;
            let seq_bytes = ap.commit_seq.to_le_bytes();
            let lsn = ap.end_lsn;
            let end = encode_record(&mut ap.pending, lsn, KIND_COMMIT, &[&seq_bytes]);
            ap.end_lsn = end;
            self.stats.record_bytes.fetch_add(end - lsn, Ordering::Release);
            end
        };
        self.stats.commits.fetch_add(1, Ordering::Release);
        self.make_durable_as(target, SyncCause::Commit)?;
        Ok(target)
    }

    /// Forces the log durable up to `lsn` — the write-back barrier used by
    /// the buffer pool before any data-page device write.
    pub fn make_durable(&self, lsn: u64) -> Result<()> {
        self.make_durable_as(lsn, SyncCause::Forced)
    }

    /// Leader/follower durability: the caller either finds `target`
    /// already durable, waits out an in-flight sync, or becomes the
    /// leader and flushes + syncs everything appended so far.
    fn make_durable_as(&self, target: u64, cause: SyncCause) -> Result<()> {
        let mut led = false;
        let mut io = self.io.lock();
        loop {
            if io.durable_lsn >= target {
                if matches!(cause, SyncCause::Commit) && !led {
                    self.stats.group_commits.fetch_add(1, Ordering::Release);
                }
                return Ok(());
            }
            if io.syncing {
                io = self.cv.wait(io).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            io.syncing = true;
            drop(io);
            let res = self.flush_and_sync();
            io = self.io.lock();
            io.syncing = false;
            match res {
                Ok(durable) => {
                    if durable > io.durable_lsn {
                        io.durable_lsn = durable;
                    }
                    led = true;
                    match cause {
                        SyncCause::Commit => {
                            self.stats.commit_syncs.fetch_add(1, Ordering::Release)
                        }
                        SyncCause::Forced => {
                            self.stats.forced_syncs.fetch_add(1, Ordering::Release)
                        }
                    };
                    self.cv.notify_all();
                }
                Err(e) => {
                    self.cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Truncates the log: everything flushed becomes the new generation
    /// base, log pages are reused from offset 0.  The caller (normally
    /// `Database::checkpoint`) must have written back every dirty data
    /// page first — records are unrecoverable after this returns.
    pub fn checkpoint(&self) -> Result<()> {
        // Become the exclusive I/O leader.
        let mut io = self.io.lock();
        while io.syncing {
            io = self.cv.wait(io).unwrap_or_else(PoisonError::into_inner);
        }
        io.syncing = true;
        drop(io);
        let res = self.checkpoint_inner();
        let mut io = self.io.lock();
        io.syncing = false;
        if let Ok(end) = res {
            if end > io.durable_lsn {
                io.durable_lsn = end;
            }
        }
        self.cv.notify_all();
        drop(io);
        res.map(|_| ())
    }

    /// Leader-context body of [`Wal::checkpoint`].
    fn checkpoint_inner(&self) -> Result<u64> {
        let end = self.flush_and_sync()?;
        let mut fs = self.flush.lock();
        debug_assert_eq!(fs.flushed_lsn, end);
        // Persist the new generation base before adopting it: a crash
        // between the two syncs leaves the old anchor + old records, which
        // is still a consistent (pre-checkpoint) log.
        write_anchor(&*self.disk, self.page_size, end)?;
        self.disk.sync()?;
        fs.base_lsn = end;
        fs.partial.clear();
        // Pages modify-logged so far must FirstMod again in the new
        // generation (their old FirstMods were just truncated away).
        self.append.lock().logged.clear();
        self.stats.checkpoints.fetch_add(1, Ordering::Release);
        self.stats.syncs.fetch_add(1, Ordering::Release);
        Ok(end)
    }

    /// Writes all pending stream bytes to log pages and syncs the device.
    /// Called only with `io.syncing` held by this thread.  On failure the
    /// pending buffer and `flushed_lsn` are untouched, so nothing is
    /// published and a retry rewrites the identical bytes.
    fn flush_and_sync(&self) -> Result<u64> {
        let mut fs = self.flush.lock();
        let (bytes, target_end) = {
            let ap = self.append.lock();
            (ap.pending.clone(), ap.end_lsn)
        };
        debug_assert_eq!(fs.flushed_lsn + bytes.len() as u64, target_end);
        if !bytes.is_empty() {
            self.write_stream(&mut fs, &bytes)?;
        }
        self.disk.sync()?;
        self.stats.syncs.fetch_add(1, Ordering::Release);
        self.append.lock().pending.drain(..bytes.len());
        fs.flushed_lsn = target_end;
        Ok(target_end)
    }

    /// Writes `bytes` (the stream range starting at `fs.flushed_lsn`) to
    /// the device, rewriting the partial tail page with its durable
    /// prefix.  `fs.partial` is updated only on full success.
    fn write_stream(&self, fs: &mut FlushState, bytes: &[u8]) -> Result<()> {
        let ps = self.page_size;
        let rel0 = (fs.flushed_lsn - fs.base_lsn) as usize;
        debug_assert_eq!(rel0 % ps, fs.partial.len() % ps);
        let mut scratch = vec![0u8; ps];
        let mut written = 0usize;
        while written < bytes.len() {
            let rel = rel0 + written;
            let page_index = 1 + (rel / ps) as u64;
            let off = rel % ps;
            let n = (ps - off).min(bytes.len() - written);
            scratch.fill(0);
            if off > 0 {
                // Only possible on the first page of this flush.
                scratch[..off].copy_from_slice(&fs.partial);
            }
            scratch[off..off + n].copy_from_slice(&bytes[written..written + n]);
            while self.disk.num_pages() <= page_index {
                self.disk.allocate_page()?;
            }
            self.disk.write_page(PageId(page_index), &scratch)?;
            self.stats.log_page_writes.fetch_add(1, Ordering::Release);
            written += n;
        }
        // Success: remember the durable prefix of the new tail page.
        let end_rel = rel0 + bytes.len();
        let tail_off = end_rel % ps;
        if tail_off == 0 {
            fs.partial.clear();
        } else {
            let page_start = end_rel - tail_off;
            if page_start >= rel0 {
                fs.partial.clear();
                fs.partial.extend_from_slice(&bytes[page_start - rel0..]);
            } else {
                fs.partial.extend_from_slice(bytes);
            }
        }
        Ok(())
    }
}

/// Encodes one record into `out`, returning the new stream end.
fn encode_record(out: &mut Vec<u8>, lsn: u64, kind: u8, body_parts: &[&[u8]]) -> u64 {
    let body_len: usize = body_parts.iter().map(|p| p.len()).sum();
    let crc = record_checksum(lsn, kind, body_parts);
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&crc.to_le_bytes());
    for part in body_parts {
        out.extend_from_slice(part);
    }
    lsn + (REC_HDR + body_len) as u64
}

fn write_anchor(disk: &dyn DiskManager, page_size: usize, base: u64) -> Result<()> {
    let mut page = vec![0u8; page_size];
    put_u32(&mut page, 0, WAL_MAGIC);
    put_u16(&mut page, 4, WAL_VERSION);
    put_u64(&mut page, 8, base);
    let mut h = Fnv::new();
    h.update(&page[..16]);
    put_u64(&mut page, 16, h.finish());
    disk.write_page(PageId(0), &page)
}

/// Sequential page-at-a-time reader over the log stream.
struct StreamReader<'a> {
    disk: &'a dyn DiskManager,
    ps: usize,
    base: u64,
    cached_index: u64,
    cache: Vec<u8>,
}

impl<'a> StreamReader<'a> {
    fn new(disk: &'a dyn DiskManager, ps: usize, base: u64) -> Self {
        StreamReader { disk, ps, base, cached_index: 0, cache: vec![0u8; ps] }
    }

    /// Reads `len` stream bytes at `pos` into `out`; `false` if the range
    /// runs past the device (i.e. the stream ends here).
    fn read(&mut self, pos: u64, len: usize, out: &mut Vec<u8>) -> bool {
        out.clear();
        let mut rel = (pos - self.base) as usize;
        let mut remaining = len;
        while remaining > 0 {
            let page_index = 1 + (rel / self.ps) as u64;
            let off = rel % self.ps;
            if page_index >= self.disk.num_pages() {
                return false;
            }
            if self.cached_index != page_index {
                if self.disk.read_page(PageId(page_index), &mut self.cache).is_err() {
                    return false;
                }
                self.cached_index = page_index;
            }
            let n = (self.ps - off).min(remaining);
            out.extend_from_slice(&self.cache[off..off + n]);
            rel += n;
            remaining -= n;
        }
        true
    }
}

/// Scans the record stream from `base` until the LSN/checksum chain
/// breaks.  Returns `(records, committed_count, committed_end_lsn)`.
fn scan_records(disk: &dyn DiskManager, ps: usize, base: u64) -> (Vec<WalRecord>, usize, u64) {
    let mut reader = StreamReader::new(disk, ps, base);
    let mut records = Vec::new();
    let mut committed = 0usize;
    let mut committed_end = base;
    let mut pos = base;
    let mut hdr = Vec::new();
    let mut body = Vec::new();
    let max_body = 16 + 2 * ps;
    loop {
        if !reader.read(pos, REC_HDR, &mut hdr) {
            break;
        }
        let lsn = get_u64(&hdr, 0);
        let body_len = get_u32(&hdr, 8) as usize;
        let kind = hdr[12];
        let crc = get_u64(&hdr, 13);
        if lsn != pos || body_len > max_body || !(KIND_FIRST_MOD..=KIND_COMMIT).contains(&kind) {
            break;
        }
        if !reader.read(pos + REC_HDR as u64, body_len, &mut body) {
            break;
        }
        if record_checksum(lsn, kind, &[&body]) != crc {
            break;
        }
        let Some(rec) = decode_body(kind, &body, ps) else {
            break;
        };
        let end = pos + (REC_HDR + body_len) as u64;
        let is_commit = matches!(rec, WalRecord::Commit { .. });
        records.push(rec);
        if is_commit {
            committed = records.len();
            committed_end = end;
        }
        pos = end;
    }
    (records, committed, committed_end)
}

fn decode_body(kind: u8, body: &[u8], ps: usize) -> Option<WalRecord> {
    match kind {
        KIND_COMMIT => {
            if body.len() != 8 {
                return None;
            }
            Some(WalRecord::Commit { seq: get_u64(body, 0) })
        }
        KIND_FIRST_MOD | KIND_DELTA => {
            if body.len() < 16 {
                return None;
            }
            let page = PageId(get_u64(body, 0));
            let delta_off = get_u32(body, 8) as usize;
            let delta_len = get_u32(body, 12) as usize;
            if delta_off + delta_len > ps {
                return None;
            }
            if kind == KIND_FIRST_MOD {
                if body.len() != 16 + ps + delta_len {
                    return None;
                }
                Some(WalRecord::FirstMod {
                    page,
                    before: body[16..16 + ps].to_vec(),
                    delta_off,
                    delta: body[16 + ps..].to_vec(),
                })
            } else {
                if body.len() != 16 + delta_len {
                    return None;
                }
                Some(WalRecord::Delta { page, delta_off, delta: body[16..].to_vec() })
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use std::sync::Arc;

    fn fresh_wal(ps: usize) -> (Arc<MemDisk>, Wal) {
        let disk = Arc::new(MemDisk::new(ps));
        let wal = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        (disk, wal)
    }

    #[test]
    fn identical_images_log_nothing() {
        let (_d, wal) = fresh_wal(128);
        let img = vec![3u8; 128];
        assert_eq!(wal.log_update(PageId(5), &img, &img).unwrap(), 0);
        assert_eq!(wal.stats().records, 0);
        assert_eq!(wal.end_lsn(), 0);
    }

    #[test]
    fn first_mod_then_delta_then_commit_roundtrips_through_scan() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut v1 = old.clone();
        v1[10..20].copy_from_slice(&[7u8; 10]);
        let mut v2 = v1.clone();
        v2[100] = 9;
        assert!(wal.log_update(PageId(4), &old, &v1).unwrap() > 0);
        assert!(wal.log_update(PageId(4), &v1, &v2).unwrap() > 0);
        let end = wal.commit().unwrap();
        assert_eq!(wal.durable_lsn(), end);
        let s = wal.stats();
        assert_eq!((s.records, s.commits, s.commit_syncs, s.group_commits), (2, 1, 1, 0));
        drop(wal);

        // A fresh attach finds the full committed stream.
        let (records, committed, committed_end) = scan_records(&*disk, 128, 0);
        assert_eq!(records.len(), 3);
        assert_eq!(committed, 3);
        assert_eq!(committed_end, end);
        assert!(matches!(&records[0],
            WalRecord::FirstMod { page, before, delta_off, delta }
            if *page == PageId(4) && before == &old && *delta_off == 10 && delta == &vec![7u8; 10]));
        assert!(matches!(&records[1],
            WalRecord::Delta { page, delta_off, delta }
            if *page == PageId(4) && *delta_off == 100 && delta == &vec![9u8]));
        assert!(matches!(&records[2], WalRecord::Commit { seq: 1 }));
    }

    #[test]
    fn uncommitted_tail_is_dropped_on_attach() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[0] = 1;
        wal.log_update(PageId(2), &old, &new).unwrap();
        let committed_end = wal.commit().unwrap();
        // An uncommitted record past the commit, flushed but not committed.
        let mut newer = new.clone();
        newer[1] = 2;
        let lsn = wal.log_update(PageId(2), &new, &newer).unwrap();
        wal.make_durable(lsn).unwrap();
        drop(wal);

        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal2.take_recovered().unwrap();
        assert_eq!(log.records.len(), 3, "commit + committed mod + tail mod");
        assert_eq!(log.committed, 2);
        assert_eq!(wal2.end_lsn(), committed_end, "appends resume at the commit boundary");
    }

    #[test]
    fn checkpoint_truncates_and_old_records_are_not_rescanned() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[5] = 5;
        wal.log_update(PageId(9), &old, &new).unwrap();
        wal.commit().unwrap();
        wal.checkpoint().unwrap();
        assert_eq!(wal.stats().checkpoints, 1);
        drop(wal);

        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        assert!(wal2.take_recovered().is_none(), "truncated log has no records");
        // The new generation reuses pages from offset 0 without tripping
        // over the stale record bytes still physically present.
        let mut v2 = new.clone();
        v2[6] = 6;
        wal2.log_update(PageId(9), &new, &v2).unwrap();
        let end = wal2.commit().unwrap();
        drop(wal2);
        let wal3 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal3.take_recovered().unwrap();
        assert_eq!(log.committed, 2);
        assert_eq!(wal3.end_lsn(), end);
    }

    #[test]
    fn records_spanning_many_pages_survive() {
        // Page size 128 but FirstMod bodies are > 128 bytes: every record
        // spans pages, partial tail pages are append-rewritten.
        let (disk, wal) = fresh_wal(128);
        let mut prev = vec![0u8; 128];
        let mut ends = Vec::new();
        for i in 0..20u8 {
            let mut next = prev.clone();
            next[(i as usize * 5) % 128] = i + 1;
            assert!(wal.log_update(PageId(u64::from(i) % 3), &prev, &next).unwrap() > 0);
            ends.push(wal.commit().unwrap());
            prev = next;
        }
        drop(wal);
        let (records, committed, committed_end) = scan_records(&*disk, 128, 0);
        assert_eq!(records.len(), 40, "20 mods + 20 commits");
        assert_eq!(committed, 40);
        assert_eq!(committed_end, *ends.last().unwrap());
    }

    #[test]
    fn torn_tail_page_breaks_the_chain_cleanly() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[0] = 1;
        wal.log_update(PageId(1), &old, &new).unwrap();
        wal.commit().unwrap();
        let end = wal.end_lsn();
        drop(wal);
        // Corrupt one byte in the middle of the committed record's body.
        let victim = PageId(1 + (end / 2) / 128);
        let mut page = vec![0u8; 128];
        disk.read_page(victim, &mut page).unwrap();
        page[(end / 2 % 128) as usize] ^= 0xFF;
        disk.write_page(victim, &page).unwrap();
        let (records, committed, _) = scan_records(&*disk, 128, 0);
        assert_eq!(records.len(), 0, "checksum break stops the scan");
        assert_eq!(committed, 0);
    }

    #[test]
    fn commit_accounting_identity_holds_under_threads() {
        let wal = Arc::new({
            let disk = MemDisk::new(256);
            Wal::attach(Box::new(disk)).unwrap()
        });
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    let mut prev = vec![0u8; 256];
                    for i in 0..50u8 {
                        let mut next = prev.clone();
                        next[t as usize * 8] = i.wrapping_add(1);
                        wal.log_update(PageId(t), &prev, &next).unwrap();
                        wal.commit().unwrap();
                        prev = next;
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let s = wal.stats();
        assert_eq!(s.commits, 200);
        assert_eq!(s.commit_syncs + s.group_commits, s.commits, "exact commit accounting");
        assert_eq!(wal.durable_lsn(), wal.end_lsn());
    }
}
