//! Page-oriented write-ahead log with group commit and redo recovery.
//!
//! The WAL lives on its **own block device** beside the data device, so
//! the data file keeps the exact layout the paper experiments were
//! calibrated against (header at page 0, etc.).  Device pages 0 and 1 are
//! a pair of alternating **anchors** naming the current log generation;
//! the rest of the device is carved into fixed-size **segments** holding a
//! byte stream of physical redo records.
//!
//! # Log stream, LSNs, and segments
//!
//! An LSN is a logical byte offset into the append-only record stream.
//! The stream is cut into size-bounded segments of
//! `payload = (segment_pages − 1) × page_size` bytes each: stream byte
//! `s` belongs to segment `s / payload` at segment offset `s % payload`.
//! The anchor carries a **segment map** — a run of consecutive segment
//! numbers starting at `first_seg`, each mapped to a device *slot* (slot
//! `k` owns device pages `2 + k·segment_pages ..`, the first of which is
//! a self-checksummed segment header naming the segment's `first_lsn`).
//! Because the payload size is a whole number of pages, LSN multiples of
//! `page_size` always fall on device page boundaries, exactly as in the
//! pre-segment layout.
//!
//! Appending past the end of the mapped region **rolls over**: the lowest
//! retired slot (or a freshly allocated one) gets a new segment header
//! and the anchor gains a map entry — usually with no device sync,
//! because losing an unsynced rollover merely ends the recovery scan at
//! the segment boundary, which only ever discards unsynced bytes.  At
//! most **one** anchor write may be outstanding, though: anchor writes
//! alternate between device pages 0 and 1, so a second unsynced rewrite
//! would land on the page holding the only *durable* anchor, and tearing
//! it (while the intermediate anchor was never destaged) could lose both
//! copies.  A rollover that follows another unsynced anchor write
//! therefore syncs the device first (see `write_anchor_guarded`).  Each
//! record is framed as
//!
//! ```text
//! lsn u64 | body_len u32 | kind u8 | checksum u64 | body …
//! ```
//!
//! with the checksum (FNV-1a 64) covering `(lsn, kind, body)`.  Four
//! record kinds exist:
//!
//! * **FirstMod** — the *first* modification of a page since the last
//!   checkpoint horizon: the full pre-image of the page plus the
//!   byte-range delta of this update.  Redo never needs the data device
//!   for such a page.
//! * **Delta** — a later modification: byte-range delta only.
//! * **Commit** — a transaction boundary; recovery replays exactly the
//!   records up to the last durable Commit.
//! * **CheckpointBegin** — a fuzzy checkpoint marker carrying the
//!   truncation horizon and the set of in-flight transactions at the
//!   instant the checkpoint started (see below).
//!
//! Update records carry the id of the transaction that appended them.  A
//! transaction here is a maximal run of one thread's updates between
//! commit boundaries: [`Wal::log_update`] assigns the calling thread a
//! fresh id on its first update after a commit, and [`Wal::commit`]
//! closes *every* in-flight run (commit boundaries of a serialized
//! history cover everything appended so far — see the caveat at the end).
//!
//! Appending buffers bytes in memory; they reach the device when a commit
//! (or a write-back barrier) forces the log, or earlier when the
//! **background flusher** drains them (see below). The partially-filled
//! tail page is append-rewritten: every rewrite carries the identical
//! previously-written prefix, so under the torn-write model (prefix of
//! sectors persists) a torn tail rewrite can only damage bytes past the
//! last sync — exactly the bytes recovery discards anyway when the
//! checksum chain breaks.
//!
//! # The background flusher
//!
//! With [`FlushPolicy::Background`], a flusher thread (owned by the
//! durable [`crate::buffer::BufferPool`]) drains the append buffer to the
//! device ahead of commits: [`Wal::log_update`] wakes it whenever the
//! buffered bytes reach the policy's watermark, and the flusher writes
//! the backlog out **without syncing** while committers are still
//! computing.  A group-commit leader then usually finds its target bytes
//! already on the device and only pays the fsync, instead of rewriting
//! megabytes of backlog inline.  The flusher serializes on the same
//! flush-state lock as the commit path, never touches `durable_lsn`, and
//! never issues a device sync — so the WAL-before-data invariant and the
//! sync accounting identity below are untouched by it.  With the default
//! [`FlushPolicy::Off`] the thread does not exist and the commit path is
//! bit-for-bit the pre-flusher behavior.
//!
//! # The WAL-before-data invariant
//!
//! The buffer pool stamps each frame with the end-LSN of its latest log
//! record and calls [`Wal::make_durable`] before any device write-back
//! ([`crate::buffer::BufferPool`] does this at its three write-back
//! sites).  Hence no page image whose update is not yet in the durable
//! log can reach the data device — redo can always reconstruct.
//!
//! # Group commit
//!
//! [`Wal::commit`] appends a Commit record and makes it durable with a
//! leader/follower protocol: the first committer to find no sync in
//! progress becomes the leader, flushes *everything appended so far*
//! (including other threads' records) and issues one device sync;
//! concurrent committers find their LSN already covered — or wait for the
//! in-flight sync and re-check — and complete **without their own
//! fsync**.  [`WalSnapshot`] exposes the exact accounting:
//! `commits == commit_syncs + group_commits` always holds.
//!
//! # Fuzzy checkpoints and truncation
//!
//! [`Wal::checkpoint`] (called by `Database::checkpoint` *after* the pool
//! wrote back every dirty page) does **not** require quiescent writers.
//! The caller samples the *flush fence* — `end_lsn()` — *before* the
//! write-back pass, so every record below the fence describes an update
//! whose page has since reached the data device.  The checkpoint then
//! picks a **truncation horizon**: the oldest of (the fence, the
//! checkpoint's own begin LSN, the first record LSN of every in-flight
//! transaction), lowered further until no page's record run straddles it
//! (a Delta above the horizon must never orphan its FirstMod below it).
//! A CheckpointBegin record naming the horizon and the in-flight
//! transactions is appended and flushed, and the anchor's *start* field
//! — the recovery scan start — advances to the horizon.  Records below
//! the horizon are thereby truncated logically; they are all committed
//! and their pages are on the data device, while every in-flight
//! writer's FirstMod pre-images (all at or above the horizon) survive
//! for rollback.  The per-generation FirstMod dedup is re-keyed to the
//! horizon: pages whose records were truncated must log a fresh
//! pre-image on their next update.
//!
//! Truncation reclaims the device by **retiring whole segments**: every
//! segment lying wholly below the new `start` is dropped from the front
//! of the anchor's map and its slot returned to a free list that the
//! next rollover reuses — no quiescent instant required, unlike the old
//! whole-device rewind.  Stale bytes in a recycled slot cannot be
//! mistaken for live records: segment LSN ranges are disjoint, the
//! reader validates each segment header's `first_lsn` before trusting
//! its pages, and a record's embedded LSN must equal its stream
//! position.
//!
//! # Recovery
//!
//! `Wal::attach` reads both anchor pages and adopts the valid one with
//! the higher sequence number (anchor writes alternate between pages 0
//! and 1, so the page being overwritten always holds the *older* anchor
//! — a torn anchor write can never lose both).  It then scans the stream
//! from the anchor's `start` until the LSN/checksum chain breaks or the
//! mapped segments end, yielding the
//! valid record prefix.  `BufferPool::recover` then replays all records
//! up to the last Commit into in-memory page images (FirstMod starts
//! from its pre-image, Delta applies on top, CheckpointBegin is a
//! no-op), **rolls back** the uncommitted tail by restoring the
//! pre-images of pages first modified in the tail, writes every touched
//! page to the data device, syncs, and checkpoints the log.  Pages whose
//! records all sit below the scan start are bitwise correct on the data
//! device (that is exactly what the truncation horizon guarantees), so
//! the result equals the committed prefix of history.
//!
//! Commit atomicity is defined at commit boundaries of a serialized
//! history: concurrent writers get durability (no committed record is
//! lost, and no uncommitted update survives a crash — even one flushed
//! to the data device inside a checkpoint window) but crash-atomicity of
//! *interleaved* uncommitted work remains the MVCC roadmap item's
//! business: a Commit record commits everything appended so far,
//! including other threads' open runs.

use crate::codec::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64};
use crate::disk::DiskManager;
use crate::error::{Error, Result};
use crate::page::PageId;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, PoisonError};
use std::thread::ThreadId;

/// Record framing: `lsn u64 | body_len u32 | kind u8 | checksum u64`.
const REC_HDR: usize = 8 + 4 + 1 + 8;
const KIND_FIRST_MOD: u8 = 1;
const KIND_DELTA: u8 = 2;
const KIND_COMMIT: u8 = 3;
const KIND_CHECKPOINT: u8 = 4;

/// Most in-flight transactions a CheckpointBegin record enumerates.  The
/// horizon alone is binding for truncation; the list is diagnostic, so
/// capping it bounds the record size without affecting correctness.
const MAX_CKPT_TXNS: usize = 4096;

/// Anchor layout (device page `anchor_seq & 1`, so writes alternate and
/// the previous anchor survives a torn rewrite):
/// `magic u32 | version u16 | pad u16 | anchor_seq u64 | start u64 |
///  seg_pages u32 | count u32 | first_seg u64 | count × slot u32 | crc u64`
/// with the crc (FNV-1a 64) covering everything before it.  `start` is
/// where recovery scans from; the map assigns device slots to the
/// consecutive segments `first_seg .. first_seg + count`.
const WAL_MAGIC: u32 = 0x5249_574C; // "RIWL"
const WAL_VERSION: u16 = 3;
const ANCHOR_HDR: usize = 40;

/// Segment header page layout (first page of every slot):
/// `magic u32 | pad u32 | first_lsn u64 | crc u64`.
const SEG_MAGIC: u32 = 0x5249_5347; // "RISG"

/// Default device pages per segment (header + 255 payload pages).
const DEFAULT_SEGMENT_PAGES: u32 = 256;

/// Map entries an anchor page can carry: header + entries + trailing crc.
fn anchor_capacity(page_size: usize) -> usize {
    page_size.saturating_sub(ANCHOR_HDR + 8) / 4
}

/// When (if ever) buffered log bytes are written to the device ahead of
/// the commit path's own flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// No background writer: bytes reach the device only when a commit,
    /// write-back barrier, or checkpoint flushes them — bit-for-bit the
    /// pre-flusher behavior.
    #[default]
    Off,
    /// A background flusher thread drains the append buffer (without
    /// syncing) whenever it holds at least `watermark_bytes`.
    Background {
        /// Buffered-byte threshold that wakes the flusher.
        watermark_bytes: usize,
    },
}

/// Log storage configuration, fixed when the log is attached (see
/// [`crate::buffer::BufferPool::new_durable_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Device pages per log segment, including the segment header page.
    /// Applies when initializing an empty device; an existing log's
    /// segment size is read back from its anchor.
    pub segment_pages: u32,
    /// Background flusher policy (default: [`FlushPolicy::Off`]).
    pub flush_policy: FlushPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { segment_pages: DEFAULT_SEGMENT_PAGES, flush_policy: FlushPolicy::Off }
    }
}

/// Streaming FNV-1a 64 (the repo has no external checksum dependency; a
/// torn or stale record only needs to be *detected*, not authenticated).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn record_checksum(lsn: u64, kind: u8, body_parts: &[&[u8]]) -> u64 {
    let mut h = Fnv::new();
    h.update(&lsn.to_le_bytes());
    h.update(&[kind]);
    for part in body_parts {
        h.update(part);
    }
    h.finish()
}

/// A decoded log record (crate-internal: consumed by pool recovery).
#[derive(Debug, Clone)]
pub(crate) enum WalRecord {
    /// First modification of `page` since the last checkpoint horizon:
    /// full pre-image plus this update's byte-range delta.
    FirstMod { page: PageId, txn: u64, before: Vec<u8>, delta_off: usize, delta: Vec<u8> },
    /// Later modification of `page`: byte-range delta only.
    Delta { page: PageId, txn: u64, delta_off: usize, delta: Vec<u8> },
    /// Transaction boundary (commits every run appended so far).
    Commit { seq: u64, txn: u64 },
    /// Fuzzy checkpoint begin: the truncation horizon and the in-flight
    /// `(txn, first record LSN)` pairs at checkpoint start.  Replay skips
    /// it; it exists so the log is self-describing about what straddled
    /// the checkpoint.
    Checkpoint { horizon: u64, active: Vec<(u64, u64)> },
}

/// The valid log contents found at attach time, for `BufferPool::recover`.
pub(crate) struct RecoveredLog {
    /// All records of the valid prefix, in LSN order.
    pub records: Vec<WalRecord>,
    /// Number of leading records up to and including the last Commit.
    pub committed: usize,
}

/// What redo recovery did, as reported by `BufferPool::recover`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid records found in the log tail.
    pub records_scanned: usize,
    /// Records replayed (up to and including the last Commit).
    pub committed_records: usize,
    /// Records past the last Commit (rolled back).
    pub tail_records: usize,
    /// Commit boundaries replayed.
    pub commits: u64,
    /// Pages rebuilt from committed log records.
    pub pages_redone: usize,
    /// Pages restored to their pre-images (first modified in the tail).
    pub pages_rolled_back: usize,
    /// Distinct in-flight transactions whose tail updates were rolled
    /// back (0 when the crash caught no open transaction).
    pub txns_rolled_back: u64,
}

/// Monotonic WAL counters (atomics, like [`crate::stats::IoStats`]).
#[derive(Default)]
struct WalStats {
    records: AtomicU64,
    record_bytes: AtomicU64,
    commits: AtomicU64,
    commit_syncs: AtomicU64,
    group_commits: AtomicU64,
    forced_syncs: AtomicU64,
    checkpoint_syncs: AtomicU64,
    syncs: AtomicU64,
    checkpoints: AtomicU64,
    log_page_writes: AtomicU64,
    flusher_writes: AtomicU64,
    flusher_bytes: AtomicU64,
    segments_created: AtomicU64,
    segments_retired: AtomicU64,
}

/// Point-in-time copy of the WAL counters.
///
/// Invariants (single snapshot, quiescent log):
/// `commits == commit_syncs + group_commits` (every successful commit
/// either led one fsync or was covered by someone else's), and
/// `syncs == commit_syncs + forced_syncs + checkpoint_syncs` (every log
/// device sync is led by exactly one commit, one forced barrier, or one
/// checkpoint — checkpoints issue two each, the record flush and the
/// anchor rewrite, plus a third when relieving a full segment map).  The
/// background flusher writes pages without syncing — except for the
/// anchor-guard sync a back-to-back rollover forces, counted under
/// `forced_syncs` — so both identities hold exactly with it racing group
/// commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalSnapshot {
    /// Page-update records appended (FirstMod + Delta, not Commits).
    pub records: u64,
    /// Total encoded bytes appended to the stream (all record kinds).
    pub record_bytes: u64,
    /// Commit records appended whose durability was then awaited.
    pub commits: u64,
    /// Commits that led a group: they performed the device sync.
    pub commit_syncs: u64,
    /// Commits served by another thread's sync — the group-commit win.
    pub group_commits: u64,
    /// Syncs forced by a durability barrier that is not a commit: the
    /// WAL-before-data barrier (page write-backs) and the anchor guard a
    /// rollover issues when the previous anchor write is still unsynced.
    pub forced_syncs: u64,
    /// Syncs issued by checkpoints (two per checkpoint: record flush +
    /// anchor rewrite, plus one more when a full segment map forces an
    /// early retirement pass), including recovery's own checkpoint.
    pub checkpoint_syncs: u64,
    /// Device syncs issued on the log device, all causes.
    pub syncs: u64,
    /// Checkpoint truncations performed.
    pub checkpoints: u64,
    /// Physical payload-page writes issued on the log device (segment
    /// headers and anchor rewrites are not counted here).
    pub log_page_writes: u64,
    /// Background-flusher drain passes that wrote at least one page.
    pub flusher_writes: u64,
    /// Stream bytes written to the device by the background flusher.
    pub flusher_bytes: u64,
    /// Segments opened by rollover (including the very first one).
    pub segments_created: u64,
    /// Whole segments retired below `start_lsn` by checkpoints; their
    /// slots are recycled by later rollovers.
    pub segments_retired: u64,
}

/// Where appends go before they are flushed.
struct AppendState {
    /// Next LSN to assign == current logical end of the stream.
    end_lsn: u64,
    /// Encoded bytes not yet written to the device; `pending[0]` is the
    /// stream byte at offset `flushed_lsn`.
    pending: Vec<u8>,
    /// Pages FirstMod-logged since the current truncation horizon, with
    /// the LSNs of their first and latest records — the horizon fixpoint
    /// needs both ends of each page's record run.
    logged: HashMap<PageId, (u64, u64)>,
    /// Commit sequence number (monotone across the log's lifetime).
    commit_seq: u64,
    /// Last transaction id handed out (monotone, reseeded at attach).
    next_txn: u64,
    /// The open transaction of each thread mid-run (commit clears all).
    thread_txns: HashMap<ThreadId, u64>,
    /// In-flight transactions → LSN of their first record.  Ordered so
    /// CheckpointBegin records enumerate deterministically.
    active: BTreeMap<u64, u64>,
}

/// Group-commit coordination.
struct IoState {
    /// Everything at or below this LSN is durable on the log device.
    durable_lsn: u64,
    /// A leader is currently flushing + syncing the device.
    syncing: bool,
}

/// The anchor's segment map: consecutive segments `first_seg ..
/// first_seg + slots.len()`, each owning the device pages of its slot.
#[derive(Debug, Clone)]
struct SegMap {
    /// Device pages per slot, including the segment header page.
    seg_pages: u64,
    /// Segment number of `slots[0]`.
    first_seg: u64,
    /// Device slot of each mapped segment, oldest first.
    slots: VecDeque<u32>,
}

impl SegMap {
    /// Stream bytes each segment holds.
    fn payload_bytes(&self, ps: usize) -> u64 {
        (self.seg_pages - 1) * ps as u64
    }

    /// First device page of `slot` (its segment header).
    fn header_page(&self, slot: u32) -> PageId {
        PageId(2 + u64::from(slot) * self.seg_pages)
    }

    /// Pops every leading segment lying wholly below stream position
    /// `start`, returning the freed slots (an emptied map is re-based at
    /// `start`'s segment).  Callers persist the shrunk map in an anchor
    /// before recycling the slots.
    fn retire_below(&mut self, start: u64, ps: usize) -> Vec<u32> {
        let payload = self.payload_bytes(ps);
        let mut retired = Vec::new();
        while let Some(&slot) = self.slots.front() {
            if (self.first_seg + 1) * payload <= start {
                self.slots.pop_front();
                self.first_seg += 1;
                retired.push(slot);
            } else {
                break;
            }
        }
        if self.slots.is_empty() {
            self.first_seg = start / payload;
        }
        retired
    }

    /// Device page holding stream byte `lsn` plus its offset in the page,
    /// or `None` if the byte's segment is not mapped.
    fn locate(&self, lsn: u64, ps: usize) -> Option<(PageId, usize)> {
        let payload = self.payload_bytes(ps);
        let idx = (lsn / payload).checked_sub(self.first_seg)?;
        let slot = *self.slots.get(usize::try_from(idx).ok()?)?;
        let off = (lsn % payload) as usize;
        let page = self.header_page(slot).raw() + 1 + (off / ps) as u64;
        Some((PageId(page), off % ps))
    }
}

/// Device-position state, touched only under the flush lock (by the
/// current I/O leader or the background flusher).
struct FlushState {
    /// Logical truncation point / recovery scan start (anchor `start`).
    /// Invariant: `start_lsn <= flushed_lsn`, and it only moves forward.
    start_lsn: u64,
    /// Stream bytes `[.., flushed_lsn)` have been written to device
    /// pages (though they are only *durable* up to the last sync).
    flushed_lsn: u64,
    /// Bytes of the partially-filled tail page already written to the
    /// device: every rewrite of that page must repeat them verbatim.
    partial: Vec<u8>,
    /// Sequence number of the current anchor; the anchor lives on device
    /// page `anchor_seq & 1` and every rewrite bumps the sequence.
    anchor_seq: u64,
    /// Highest anchor sequence covered by a device sync.  Rollovers write
    /// anchors unsynced, but only one such write may be outstanding: the
    /// *next* rewrite lands on the latest durable anchor's page (parities
    /// alternate), so [`Wal::write_anchor_guarded`] pre-syncs whenever
    /// `anchor_seq != synced_anchor_seq`.
    synced_anchor_seq: u64,
    /// The current segment map, as persisted in the anchor.
    map: SegMap,
    /// Retired slots available for rollover reuse (lowest first).
    free: BTreeSet<u32>,
    /// Slots physically carved out of the device so far.
    num_slots: u64,
}

/// Wakeup/shutdown flags for the background flusher thread.
#[derive(Default)]
struct FlusherCtl {
    wake: bool,
    shutdown: bool,
}

/// Append-only page-redo log on a dedicated block device.  Created via
/// [`crate::buffer::BufferPool::new_durable`]; shared by reference through
/// [`crate::buffer::BufferPool::wal`].
pub struct Wal {
    disk: Box<dyn DiskManager>,
    page_size: usize,
    /// Device pages per segment slot (fixed at attach, from the anchor).
    seg_pages: u64,
    /// `Some(watermark_bytes)` under [`FlushPolicy::Background`].
    watermark: Option<usize>,
    append: Mutex<AppendState>,
    io: Mutex<IoState>,
    cv: Condvar,
    flush: Mutex<FlushState>,
    flusher: Mutex<FlusherCtl>,
    flusher_cv: Condvar,
    stats: WalStats,
    recovered: Mutex<Option<RecoveredLog>>,
}

enum SyncCause {
    Commit,
    Forced,
}

impl Wal {
    /// Opens (or initializes) the log on `disk` with default settings
    /// (default segment size, [`FlushPolicy::Off`]).
    #[cfg(test)]
    pub(crate) fn attach(disk: Box<dyn DiskManager>) -> Result<Wal> {
        Wal::attach_with(disk, WalConfig::default())
    }

    /// Opens (or initializes) the log on `disk`.  A non-empty device must
    /// carry a valid anchor; the record stream is scanned up to the first
    /// torn/stale record and the result parked for `BufferPool::recover`.
    /// Appends resume at the last commit boundary.
    pub(crate) fn attach_with(disk: Box<dyn DiskManager>, config: WalConfig) -> Result<Wal> {
        let page_size = disk.page_size();
        if anchor_capacity(page_size) < 1 {
            return Err(Error::InvalidArgument(format!(
                "WAL device page size {page_size} smaller than the anchor"
            )));
        }
        if config.segment_pages < 2 {
            return Err(Error::InvalidArgument(
                "WAL segment_pages must be at least 2 (header page + payload)".into(),
            ));
        }
        let (anchor, scan) = if disk.num_pages() == 0 {
            disk.allocate_page()?;
            disk.allocate_page()?;
            let map = SegMap {
                seg_pages: u64::from(config.segment_pages),
                first_seg: 0,
                slots: VecDeque::new(),
            };
            write_anchor(&*disk, page_size, 0, 0, &map)?;
            disk.sync()?;
            (Anchor { seq: 0, start: 0, map }, ScanResult::empty(0))
        } else {
            let mut anchor = read_best_anchor(&*disk, page_size)?;
            if anchor.map.slots.is_empty() {
                // An empty map pins its origin to the scan start so the
                // next rollover maps exactly the segment being written.
                anchor.map.first_seg = anchor.start / anchor.map.payload_bytes(page_size);
            }
            let scan = scan_records(&*disk, page_size, &anchor.map, anchor.start);
            (anchor, scan)
        };
        let ScanResult { records, committed, committed_end, max_seq, max_txn } = scan;
        // The already-written bytes of the page holding the resume
        // position: the prefix every tail-page rewrite must carry.
        let tail_off = (committed_end % page_size as u64) as usize;
        let mut partial = Vec::new();
        if tail_off > 0 {
            let Some((page, off)) = anchor.map.locate(committed_end, page_size) else {
                return Err(Error::Corrupt("WAL anchor maps no segment for the log tail".into()));
            };
            debug_assert_eq!(off, tail_off);
            let mut buf = vec![0u8; page_size];
            disk.read_page(page, &mut buf)?;
            partial.extend_from_slice(&buf[..tail_off]);
        }
        let seg_pages = anchor.map.seg_pages;
        let num_slots = disk.num_pages().saturating_sub(2) / seg_pages;
        let used: HashSet<u32> = anchor.map.slots.iter().copied().collect();
        let free: BTreeSet<u32> = (0..num_slots)
            .filter_map(|s| u32::try_from(s).ok())
            .filter(|s| !used.contains(s))
            .collect();
        let recovered =
            if records.is_empty() { None } else { Some(RecoveredLog { records, committed }) };
        Ok(Wal {
            disk,
            page_size,
            seg_pages,
            watermark: match config.flush_policy {
                FlushPolicy::Off => None,
                FlushPolicy::Background { watermark_bytes } => Some(watermark_bytes.max(1)),
            },
            append: Mutex::new(AppendState {
                end_lsn: committed_end,
                pending: Vec::new(),
                logged: HashMap::new(),
                // Resume both monotone sequences above anything the scan
                // saw, so retained generations never observe a regression.
                commit_seq: max_seq,
                next_txn: max_txn,
                thread_txns: HashMap::new(),
                active: BTreeMap::new(),
            }),
            io: Mutex::new(IoState { durable_lsn: committed_end, syncing: false }),
            cv: Condvar::new(),
            flush: Mutex::new(FlushState {
                start_lsn: anchor.start,
                flushed_lsn: committed_end,
                partial,
                anchor_seq: anchor.seq,
                // The adopted anchor is on the device (fresh init synced
                // it; a reopened one was read back), so it is the durable
                // baseline the first rollover may overwrite-the-twin of.
                synced_anchor_seq: anchor.seq,
                map: anchor.map,
                free,
                num_slots,
            }),
            flusher: Mutex::new(FlusherCtl::default()),
            flusher_cv: Condvar::new(),
            stats: WalStats::default(),
            recovered: Mutex::new(recovered),
        })
    }

    /// Takes the log contents found at attach time (once).
    pub(crate) fn take_recovered(&self) -> Option<RecoveredLog> {
        self.recovered.lock().take()
    }

    /// Current counters.
    pub fn stats(&self) -> WalSnapshot {
        let s = &self.stats;
        WalSnapshot {
            records: s.records.load(Ordering::Acquire),
            record_bytes: s.record_bytes.load(Ordering::Acquire),
            commits: s.commits.load(Ordering::Acquire),
            commit_syncs: s.commit_syncs.load(Ordering::Acquire),
            group_commits: s.group_commits.load(Ordering::Acquire),
            forced_syncs: s.forced_syncs.load(Ordering::Acquire),
            checkpoint_syncs: s.checkpoint_syncs.load(Ordering::Acquire),
            syncs: s.syncs.load(Ordering::Acquire),
            checkpoints: s.checkpoints.load(Ordering::Acquire),
            log_page_writes: s.log_page_writes.load(Ordering::Acquire),
            flusher_writes: s.flusher_writes.load(Ordering::Acquire),
            flusher_bytes: s.flusher_bytes.load(Ordering::Acquire),
            segments_created: s.segments_created.load(Ordering::Acquire),
            segments_retired: s.segments_retired.load(Ordering::Acquire),
        }
    }

    /// Logical end of the record stream (next LSN to be assigned).
    pub fn end_lsn(&self) -> u64 {
        self.append.lock().end_lsn
    }

    /// Everything at or below this LSN is durable on the log device.
    pub fn durable_lsn(&self) -> u64 {
        self.io.lock().durable_lsn
    }

    /// Appends a redo record for an update of `page` from image `old` to
    /// image `new`.  Returns the record's end LSN — the page's new LSN
    /// stamp — or 0 if the images are identical (nothing to log).  The
    /// record is buffered in memory; durability comes from [`Wal::commit`]
    /// or [`Wal::make_durable`].
    pub fn log_update(&self, page: PageId, old: &[u8], new: &[u8]) -> Result<u64> {
        if old.len() != new.len() || old.len() != self.page_size {
            return Err(Error::InvalidArgument(format!(
                "log_update image sizes {}/{} != page size {}",
                old.len(),
                new.len(),
                self.page_size
            )));
        }
        let Some(first) = old.iter().zip(new.iter()).position(|(a, b)| a != b) else {
            return Ok(0);
        };
        let last = (first..old.len()).rev().find(|&i| old[i] != new[i]).expect("diff exists");
        let delta = &new[first..=last];
        let page_bytes = page.raw().to_le_bytes();
        let off_bytes = (first as u32).to_le_bytes();
        let len_bytes = (delta.len() as u32).to_le_bytes();

        let mut ap = self.append.lock();
        let lsn = ap.end_lsn;
        // Transaction identity is thread-keyed: the first update after a
        // commit boundary opens a fresh run for the calling thread.
        let tid = std::thread::current().id();
        let txn = match ap.thread_txns.get(&tid) {
            Some(&txn) => txn,
            None => {
                ap.next_txn += 1;
                let txn = ap.next_txn;
                ap.thread_txns.insert(tid, txn);
                txn
            }
        };
        ap.active.entry(txn).or_insert(lsn);
        let first_mod = match ap.logged.entry(page) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().1 = lsn;
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((lsn, lsn));
                true
            }
        };
        let txn_bytes = txn.to_le_bytes();
        let (kind, body_parts): (u8, Vec<&[u8]>) = if first_mod {
            (KIND_FIRST_MOD, vec![&page_bytes, &txn_bytes, &off_bytes, &len_bytes, old, delta])
        } else {
            (KIND_DELTA, vec![&page_bytes, &txn_bytes, &off_bytes, &len_bytes, delta])
        };
        let end = encode_record(&mut ap.pending, lsn, kind, &body_parts);
        ap.end_lsn = end;
        let wake = self.watermark.is_some_and(|w| ap.pending.len() >= w);
        drop(ap);
        self.stats.records.fetch_add(1, Ordering::Release);
        self.stats.record_bytes.fetch_add(end - lsn, Ordering::Release);
        if wake {
            self.wake_flusher();
        }
        Ok(end)
    }

    /// Nudges the background flusher (no-op when none is configured).
    fn wake_flusher(&self) {
        let mut ctl = self.flusher.lock();
        if !ctl.wake {
            ctl.wake = true;
            self.flusher_cv.notify_all();
        }
    }

    /// Body of the background flusher thread, run by the buffer pool's
    /// spawned thread under [`FlushPolicy::Background`]: wait for a
    /// watermark wakeup, drain the append buffer to the device, repeat
    /// until [`Wal::flusher_stop`].  Errors are swallowed — the commit
    /// path re-attempts the identical write and reports them.
    pub(crate) fn flusher_run(&self) {
        loop {
            {
                let mut ctl = self.flusher.lock();
                while !ctl.wake && !ctl.shutdown {
                    ctl = self.flusher_cv.wait(ctl).unwrap_or_else(PoisonError::into_inner);
                }
                if ctl.shutdown {
                    return;
                }
                ctl.wake = false;
            }
            let _ = self.flush_ahead();
        }
    }

    /// Signals the flusher thread to exit (the owner joins the handle).
    pub(crate) fn flusher_stop(&self) {
        let mut ctl = self.flusher.lock();
        ctl.shutdown = true;
        self.flusher_cv.notify_all();
    }

    /// One background drain pass: write every currently-buffered stream
    /// byte to the device **without syncing** and publish the advance.
    /// Nothing here touches `durable_lsn` or the sync ledger; commits
    /// that arrive later find their bytes written and only pay the fsync.
    fn flush_ahead(&self) -> Result<()> {
        let mut fs = self.flush.lock();
        let (bytes, target_end) = {
            let ap = self.append.lock();
            (ap.pending.clone(), ap.end_lsn)
        };
        if bytes.is_empty() {
            return Ok(());
        }
        debug_assert_eq!(fs.flushed_lsn + bytes.len() as u64, target_end);
        let new_partial = self.write_stream(&mut fs, &bytes)?;
        // Publish only after every page write succeeded, mirroring
        // `flush_and_sync`: a failed pass leaves the pending buffer and
        // flush state untouched so the retry rewrites identical bytes.
        self.append.lock().pending.drain(..bytes.len());
        fs.flushed_lsn = target_end;
        fs.partial = new_partial;
        self.stats.flusher_writes.fetch_add(1, Ordering::Release);
        self.stats.flusher_bytes.fetch_add(bytes.len() as u64, Ordering::Release);
        Ok(())
    }

    /// Appends a Commit record and group-commits it: returns once the
    /// whole stream up to (and including) the record is durable.  Returns
    /// the commit's end LSN.
    pub fn commit(&self) -> Result<u64> {
        let target = {
            let mut ap = self.append.lock();
            ap.commit_seq += 1;
            let txn = ap.thread_txns.get(&std::thread::current().id()).copied().unwrap_or_default();
            let seq_bytes = ap.commit_seq.to_le_bytes();
            let txn_bytes = txn.to_le_bytes();
            let lsn = ap.end_lsn;
            let end = encode_record(&mut ap.pending, lsn, KIND_COMMIT, &[&seq_bytes, &txn_bytes]);
            ap.end_lsn = end;
            // A commit boundary covers everything appended so far (module
            // docs), so every in-flight run closes here — no transaction
            // stays active across it.
            ap.thread_txns.clear();
            ap.active.clear();
            self.stats.record_bytes.fetch_add(end - lsn, Ordering::Release);
            end
        };
        self.stats.commits.fetch_add(1, Ordering::Release);
        self.make_durable_as(target, SyncCause::Commit)?;
        Ok(target)
    }

    /// Forces the log durable up to `lsn` — the write-back barrier used by
    /// the buffer pool before any data-page device write.
    pub fn make_durable(&self, lsn: u64) -> Result<()> {
        self.make_durable_as(lsn, SyncCause::Forced)
    }

    /// Leader/follower durability: the caller either finds `target`
    /// already durable, waits out an in-flight sync, or becomes the
    /// leader and flushes + syncs everything appended so far.
    fn make_durable_as(&self, target: u64, cause: SyncCause) -> Result<()> {
        let mut led = false;
        let mut io = self.io.lock();
        loop {
            if io.durable_lsn >= target {
                if matches!(cause, SyncCause::Commit) && !led {
                    self.stats.group_commits.fetch_add(1, Ordering::Release);
                }
                return Ok(());
            }
            if io.syncing {
                io = self.cv.wait(io).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            io.syncing = true;
            drop(io);
            let res = self.flush_and_sync();
            io = self.io.lock();
            io.syncing = false;
            match res {
                Ok(durable) => {
                    if durable > io.durable_lsn {
                        io.durable_lsn = durable;
                    }
                    led = true;
                    match cause {
                        SyncCause::Commit => {
                            self.stats.commit_syncs.fetch_add(1, Ordering::Release)
                        }
                        SyncCause::Forced => {
                            self.stats.forced_syncs.fetch_add(1, Ordering::Release)
                        }
                    };
                    self.cv.notify_all();
                }
                Err(e) => {
                    self.cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Fuzzy checkpoint: truncates the log down to a horizon that spares
    /// every in-flight writer's rollback pre-images.  `flushed_fence` is
    /// the caller's `end_lsn()` sample taken *before* it wrote back dirty
    /// data pages (normally `Database::checkpoint`): every record below
    /// the fence describes an update whose page has reached the data
    /// device, so such records are truncatable once no open transaction
    /// or straddling page run needs them.  Callers need **not** be
    /// quiescent — commits, updates, and this checkpoint interleave
    /// freely.  Truncation reclaims the device by retiring every segment
    /// lying wholly below the new scan start: the slots go back on the
    /// free list for rollover reuse, so a steady checkpoint cadence
    /// bounds the log's size without ever waiting for a quiescent
    /// instant.  When the segment map is full *and* the pending backlog
    /// needs a rollover, retirement runs once more **before** the record
    /// flush, so the flush itself can reuse the freed slots instead of
    /// wedging on a map-full error (which only truncation could have
    /// relieved).
    pub fn checkpoint(&self, flushed_fence: u64) -> Result<()> {
        // Become the exclusive I/O leader.
        let mut io = self.io.lock();
        while io.syncing {
            io = self.cv.wait(io).unwrap_or_else(PoisonError::into_inner);
        }
        io.syncing = true;
        drop(io);
        let res = self.checkpoint_inner(flushed_fence);
        let mut io = self.io.lock();
        io.syncing = false;
        if let Ok(end) = res {
            if end > io.durable_lsn {
                io.durable_lsn = end;
            }
        }
        self.cv.notify_all();
        drop(io);
        res.map(|_| ())
    }

    /// Leader-context body of [`Wal::checkpoint`].
    fn checkpoint_inner(&self, flushed_fence: u64) -> Result<u64> {
        // A stale fence (from before a concurrent checkpoint advanced the
        // start) must never move the start backwards: floor it.
        let start_floor = self.flush.lock().start_lsn;
        let eff_fence = flushed_fence.max(start_floor);
        // Sampled outside the append lock (lock order: flush → append); a
        // stale (lower) value only makes the early-retirement pass below
        // more conservative.
        let flushed_floor = self.flush.lock().flushed_lsn;
        // Phase 1, under the append lock: pick the truncation horizon,
        // append a CheckpointBegin if any writer is in flight, and re-key
        // the FirstMod dedup to the horizon.  `pre_horizon` is the same
        // horizon additionally capped at the flushed position and re-run
        // through the straddle fixpoint — the furthest the scan start may
        // advance *before* the pending backlog is flushed.  It must be
        // computed here: the retain below forgets the runs wholly under
        // `h`, so the fixpoint cannot be re-derived later.
        let (horizon, pre_horizon) = {
            let mut ap = self.append.lock();
            let begin = ap.end_lsn;
            let quiescent_now = ap.active.is_empty() && eff_fence >= begin;
            let mut h = eff_fence.min(begin);
            if let Some(&first) = ap.active.values().min() {
                h = h.min(first);
            }
            // No page's record run may straddle the horizon: a surviving
            // Delta would orphan its truncated FirstMod.  Lower h to the
            // FirstMod of any straddler until a fixpoint (h only
            // decreases, bounded by the oldest FirstMod).
            h = straddle_floor(&ap.logged, h);
            debug_assert!(h >= start_floor, "truncation horizon may only move forward");
            let pre = straddle_floor(&ap.logged, h.min(flushed_floor));
            if !quiescent_now {
                let listed = ap.active.len().min(MAX_CKPT_TXNS);
                let mut body = Vec::with_capacity(12 + 16 * listed);
                body.extend_from_slice(&h.to_le_bytes());
                body.extend_from_slice(&(listed as u32).to_le_bytes());
                for (&txn, &first) in ap.active.iter().take(listed) {
                    body.extend_from_slice(&txn.to_le_bytes());
                    body.extend_from_slice(&first.to_le_bytes());
                }
                let end = encode_record(&mut ap.pending, begin, KIND_CHECKPOINT, &[&body]);
                ap.end_lsn = end;
                self.stats.record_bytes.fetch_add(end - begin, Ordering::Release);
            }
            // Pages whose whole run sits below the horizon are truncated:
            // their next update must log a fresh pre-image.  (The fixpoint
            // above guarantees `first >= h` keeps exactly the survivors.)
            ap.logged.retain(|_, &mut (first, _)| first >= h);
            (h, pre)
        };
        // Phase 1.5: a full segment map plus a pending backlog needing a
        // rollover would wedge — the flush below fails with the same
        // map-full error the appenders see, and only this routine can
        // retire segments.  Retire below the pre-flush horizon *first* so
        // the flush finds free slots.  Skipped unless the flush would
        // actually hit the map-full error, keeping the common checkpoint
        // at exactly two syncs.  (If nothing below `pre_horizon` is
        // retirable — e.g. one giant open transaction pins the whole map
        // — the flush still fails and the error propagates; truncation
        // cannot spare records a rollback may need.)
        {
            let mut fs = self.flush.lock();
            let payload = fs.map.payload_bytes(self.page_size);
            let target_end = self.append.lock().end_lsn;
            let mapped_end = (fs.map.first_seg + fs.map.slots.len() as u64) * payload;
            if fs.map.slots.len() >= anchor_capacity(self.page_size) && target_end > mapped_end {
                let start = pre_horizon.max(fs.start_lsn);
                let mut map = fs.map.clone();
                let retired = map.retire_below(start, self.page_size);
                if !retired.is_empty() {
                    self.write_anchor_guarded(&mut fs, start, &map)?;
                    self.disk.sync()?;
                    fs.synced_anchor_seq = fs.anchor_seq;
                    self.stats.syncs.fetch_add(1, Ordering::Release);
                    self.stats.checkpoint_syncs.fetch_add(1, Ordering::Release);
                    fs.start_lsn = start;
                    fs.map = map;
                    self.stats.segments_retired.fetch_add(retired.len() as u64, Ordering::Release);
                    for slot in retired {
                        fs.free.insert(slot);
                    }
                }
            }
        }
        let end = self.flush_and_sync()?;
        self.stats.checkpoint_syncs.fetch_add(1, Ordering::Release);
        let mut fs = self.flush.lock();
        // The background flusher may have drained appends newer than this
        // checkpoint's own flush target by now; it only ever advances.
        debug_assert!(fs.flushed_lsn >= end);
        // Phase 2: advance the scan start to the horizon and retire every
        // segment lying wholly below it — their records are all committed
        // and on the data device, so the slots go back on the free list
        // for rollover reuse.  Persist the new anchor before adopting it:
        // a crash between the two syncs leaves the old anchor + old
        // records, which is still a consistent (pre-checkpoint) log.
        let start = horizon.max(fs.start_lsn);
        let mut map = fs.map.clone();
        let retired = map.retire_below(start, self.page_size);
        self.write_anchor_guarded(&mut fs, start, &map)?;
        self.disk.sync()?;
        fs.synced_anchor_seq = fs.anchor_seq;
        fs.start_lsn = start;
        fs.map = map;
        self.stats.segments_retired.fetch_add(retired.len() as u64, Ordering::Release);
        for slot in retired {
            fs.free.insert(slot);
        }
        self.stats.checkpoints.fetch_add(1, Ordering::Release);
        self.stats.syncs.fetch_add(1, Ordering::Release);
        self.stats.checkpoint_syncs.fetch_add(1, Ordering::Release);
        Ok(end)
    }

    /// Writes all pending stream bytes to log pages and syncs the device.
    /// Called only with `io.syncing` held by this thread.  On failure —
    /// including a failed sync *after* the page writes landed — the
    /// pending buffer, `flushed_lsn`, and `partial` are all untouched, so
    /// nothing is published and a retry rewrites the identical bytes.
    fn flush_and_sync(&self) -> Result<u64> {
        let mut fs = self.flush.lock();
        let (bytes, target_end) = {
            let ap = self.append.lock();
            (ap.pending.clone(), ap.end_lsn)
        };
        debug_assert_eq!(fs.flushed_lsn + bytes.len() as u64, target_end);
        let new_partial =
            if bytes.is_empty() { None } else { Some(self.write_stream(&mut fs, &bytes)?) };
        self.disk.sync()?;
        self.stats.syncs.fetch_add(1, Ordering::Release);
        // The sync also destaged any rollover anchor written above.
        fs.synced_anchor_seq = fs.anchor_seq;
        self.append.lock().pending.drain(..bytes.len());
        fs.flushed_lsn = target_end;
        if let Some(partial) = new_partial {
            fs.partial = partial;
        }
        Ok(target_end)
    }

    /// Writes `bytes` (the stream range starting at `fs.flushed_lsn`) to
    /// the device, rewriting the partial tail page with its
    /// already-written prefix and rolling over into a fresh segment
    /// whenever the stream outgrows the mapped ones.  Returns the new
    /// tail page's written prefix; the caller installs it into
    /// `fs.partial` (and advances `flushed_lsn`) only once every write
    /// succeeded — a dying write or sync must leave the published flush
    /// state untouched so a retry rewrites the identical bytes.
    fn write_stream(&self, fs: &mut FlushState, bytes: &[u8]) -> Result<Vec<u8>> {
        let ps = self.page_size;
        let payload = (self.seg_pages - 1) * ps as u64;
        debug_assert_eq!((fs.flushed_lsn % ps as u64) as usize, fs.partial.len());
        let mut scratch = vec![0u8; ps];
        let mut written = 0usize;
        while written < bytes.len() {
            let pos = fs.flushed_lsn + written as u64;
            self.ensure_segment(fs, pos / payload)?;
            let (page, off) =
                fs.map.locate(pos, ps).expect("ensure_segment mapped the segment being written");
            // The payload size is a whole number of pages, so a page's
            // bytes never straddle a segment boundary.
            let n = (ps - off).min(bytes.len() - written);
            scratch.fill(0);
            if off > 0 {
                // Only possible on the first page of this flush.
                scratch[..off].copy_from_slice(&fs.partial);
            }
            scratch[off..off + n].copy_from_slice(&bytes[written..written + n]);
            self.disk.write_page(page, &scratch)?;
            self.stats.log_page_writes.fetch_add(1, Ordering::Release);
            written += n;
        }
        // Success: return the written prefix of the new tail page.
        let tail_off = ((fs.flushed_lsn + bytes.len() as u64) % ps as u64) as usize;
        let new_partial = if tail_off == 0 {
            Vec::new()
        } else if tail_off <= bytes.len() {
            bytes[bytes.len() - tail_off..].to_vec()
        } else {
            let mut p = fs.partial.clone();
            p.extend_from_slice(bytes);
            p
        };
        Ok(new_partial)
    }

    /// Maps segment `seg` if the stream has outgrown the mapped region:
    /// recycles the lowest retired slot (or carves a new one out of the
    /// device), writes its segment header, and persists the grown map in
    /// the next anchor — without a sync when the previous anchor is
    /// durable (an unsynced rollover can only be lost together with the
    /// unsynced bytes behind it); a rollover following another unsynced
    /// anchor write pre-syncs via [`Wal::write_anchor_guarded`] so it
    /// cannot overwrite the only durable anchor.
    fn ensure_segment(&self, fs: &mut FlushState, seg: u64) -> Result<()> {
        if fs.map.slots.is_empty() {
            fs.map.first_seg = seg;
        }
        debug_assert!(seg >= fs.map.first_seg, "log writes only move forward");
        if seg < fs.map.first_seg + fs.map.slots.len() as u64 {
            return Ok(());
        }
        debug_assert_eq!(
            seg,
            fs.map.first_seg + fs.map.slots.len() as u64,
            "log writes are sequential: only the next segment ever rolls over"
        );
        let cap = anchor_capacity(self.page_size);
        if fs.map.slots.len() >= cap {
            return Err(Error::InvalidArgument(format!(
                "WAL segment map full ({cap} segments of {} pages); \
                 checkpoint to retire old segments",
                self.seg_pages
            )));
        }
        let slot = match fs.free.iter().next().copied() {
            Some(slot) => slot,
            None => {
                // Carve a fresh slot out of the device.  Allocation is
                // durable-immediate; if the header or anchor write below
                // fails, the slot stays on the free list for the retry.
                let slot = u32::try_from(fs.num_slots).map_err(|_| {
                    Error::InvalidArgument("WAL device exceeds 2^32 segment slots".into())
                })?;
                let target = 2 + (fs.num_slots + 1) * self.seg_pages;
                while self.disk.num_pages() < target {
                    self.disk.allocate_page()?;
                }
                fs.num_slots += 1;
                fs.free.insert(slot);
                slot
            }
        };
        let payload = (self.seg_pages - 1) * self.page_size as u64;
        write_segment_header(&*self.disk, self.page_size, &fs.map, slot, seg * payload)?;
        let mut grown = fs.map.clone();
        grown.slots.push_back(slot);
        let start = fs.start_lsn;
        self.write_anchor_guarded(fs, start, &grown)?;
        fs.map = grown;
        fs.free.remove(&slot);
        self.stats.segments_created.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Persists a new anchor (sequence `fs.anchor_seq + 1`, carrying
    /// `start` and `map`) and bumps `fs.anchor_seq` — **pre-syncing the
    /// device when the previous anchor write is still unsynced**.  Anchor
    /// parities alternate, so with an intermediate anchor outstanding
    /// this write lands on the page holding the latest *durable* anchor;
    /// tearing it in a crash while the intermediate write was never
    /// destaged would lose both copies, and recovery would fall back to
    /// a stale anchor whose map can exclude segments holding
    /// already-synced commits.  The guard sync destages the intermediate
    /// anchor first, keeping at least one intact current-or-newer anchor
    /// durable at every instant; it is attributed to `forced_syncs` in
    /// the sync ledger.
    fn write_anchor_guarded(&self, fs: &mut FlushState, start: u64, map: &SegMap) -> Result<()> {
        if fs.anchor_seq != fs.synced_anchor_seq {
            self.disk.sync()?;
            self.stats.syncs.fetch_add(1, Ordering::Release);
            self.stats.forced_syncs.fetch_add(1, Ordering::Release);
            fs.synced_anchor_seq = fs.anchor_seq;
        }
        write_anchor(&*self.disk, self.page_size, fs.anchor_seq + 1, start, map)?;
        fs.anchor_seq += 1;
        Ok(())
    }
}

/// Lowers `h` to the FirstMod LSN of any page whose record run straddles
/// it, until a fixpoint: truncating at the result orphans no Delta from
/// its pre-image.  Monotone decreasing, bounded by the oldest FirstMod.
fn straddle_floor(logged: &HashMap<PageId, (u64, u64)>, mut h: u64) -> u64 {
    loop {
        let straddler = logged
            .values()
            .filter(|&&(first, last)| first < h && last >= h)
            .map(|&(first, _)| first)
            .min();
        match straddler {
            Some(first) => h = first,
            None => break h,
        }
    }
}

/// Encodes one record into `out`, returning the new stream end.
fn encode_record(out: &mut Vec<u8>, lsn: u64, kind: u8, body_parts: &[&[u8]]) -> u64 {
    let body_len: usize = body_parts.iter().map(|p| p.len()).sum();
    let crc = record_checksum(lsn, kind, body_parts);
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&crc.to_le_bytes());
    for part in body_parts {
        out.extend_from_slice(part);
    }
    lsn + (REC_HDR + body_len) as u64
}

/// Persists the anchor carrying `map` as sequence `seq`, on the anchor
/// page of `seq`'s parity — the page holding the *older* of the two
/// anchors, so a torn write cannot lose both **provided the twin page's
/// anchor is durable** ([`Wal::write_anchor_guarded`] enforces that).
fn write_anchor(
    disk: &dyn DiskManager,
    page_size: usize,
    seq: u64,
    start: u64,
    map: &SegMap,
) -> Result<()> {
    debug_assert!(map.slots.len() <= anchor_capacity(page_size));
    let mut page = vec![0u8; page_size];
    put_u32(&mut page, 0, WAL_MAGIC);
    put_u16(&mut page, 4, WAL_VERSION);
    put_u64(&mut page, 8, seq);
    put_u64(&mut page, 16, start);
    put_u32(&mut page, 24, map.seg_pages as u32);
    put_u32(&mut page, 28, map.slots.len() as u32);
    put_u64(&mut page, 32, map.first_seg);
    for (i, &slot) in map.slots.iter().enumerate() {
        put_u32(&mut page, ANCHOR_HDR + 4 * i, slot);
    }
    let crc_off = ANCHOR_HDR + 4 * map.slots.len();
    let mut h = Fnv::new();
    h.update(&page[..crc_off]);
    put_u64(&mut page, crc_off, h.finish());
    disk.write_page(PageId(seq & 1), &page)
}

/// Writes the self-checksummed header page of `slot`, opening the
/// segment whose stream range starts at `first_lsn`.
fn write_segment_header(
    disk: &dyn DiskManager,
    page_size: usize,
    map: &SegMap,
    slot: u32,
    first_lsn: u64,
) -> Result<()> {
    let mut page = vec![0u8; page_size];
    put_u32(&mut page, 0, SEG_MAGIC);
    put_u64(&mut page, 8, first_lsn);
    let mut h = Fnv::new();
    h.update(&page[..16]);
    put_u64(&mut page, 16, h.finish());
    disk.write_page(map.header_page(slot), &page)
}

/// A decoded, validated anchor.
struct Anchor {
    seq: u64,
    start: u64,
    map: SegMap,
}

/// Decodes one anchor page.  `Ok(None)` means "not a valid anchor"
/// (zeroed, torn, or checksum-broken — fall back to the twin page);
/// `Err` means a structurally recognizable anchor of the wrong version.
fn parse_anchor(page: &[u8], page_size: usize) -> Result<Option<Anchor>> {
    if get_u32(page, 0) != WAL_MAGIC {
        return Ok(None);
    }
    let version = get_u16(page, 4);
    if version != WAL_VERSION {
        return Err(Error::Corrupt(format!(
            "WAL anchor version {version} (expected {WAL_VERSION})"
        )));
    }
    let seg_pages = u64::from(get_u32(page, 24));
    let count = get_u32(page, 28) as usize;
    if seg_pages < 2 || count > anchor_capacity(page_size) {
        return Ok(None);
    }
    let crc_off = ANCHOR_HDR + 4 * count;
    let mut h = Fnv::new();
    h.update(&page[..crc_off]);
    if get_u64(page, crc_off) != h.finish() {
        return Ok(None);
    }
    let slots = (0..count).map(|i| get_u32(page, ANCHOR_HDR + 4 * i)).collect();
    Ok(Some(Anchor {
        seq: get_u64(page, 8),
        start: get_u64(page, 16),
        map: SegMap { seg_pages, first_seg: get_u64(page, 32), slots },
    }))
}

/// Reads both anchor pages and adopts the valid one with the higher
/// sequence number.
fn read_best_anchor(disk: &dyn DiskManager, page_size: usize) -> Result<Anchor> {
    let mut best: Option<Anchor> = None;
    let mut err: Option<Error> = None;
    let mut buf = vec![0u8; page_size];
    for page in 0..2u64 {
        if page >= disk.num_pages() {
            continue;
        }
        disk.read_page(PageId(page), &mut buf)?;
        match parse_anchor(&buf, page_size) {
            Ok(Some(a)) => {
                if best.as_ref().is_none_or(|b| a.seq > b.seq) {
                    best = Some(a);
                }
            }
            Ok(None) => {}
            Err(e) => err = Some(e),
        }
    }
    match best {
        Some(a) => Ok(a),
        None => Err(err.unwrap_or_else(|| Error::Corrupt("no valid WAL anchor".into()))),
    }
}

/// Sequential page-at-a-time reader over the segment-mapped log stream.
/// Each segment's header is validated once before its pages are trusted,
/// so a slot the anchor maps but whose header write never persisted (a
/// crash mid-rollover) cleanly ends the stream at the boundary.
struct StreamReader<'a> {
    disk: &'a dyn DiskManager,
    ps: usize,
    map: &'a SegMap,
    verified: HashSet<u64>,
    cached_index: u64,
    cache: Vec<u8>,
}

impl<'a> StreamReader<'a> {
    fn new(disk: &'a dyn DiskManager, ps: usize, map: &'a SegMap) -> Self {
        StreamReader {
            disk,
            ps,
            map,
            verified: HashSet::new(),
            cached_index: 0,
            cache: vec![0u8; ps],
        }
    }

    /// Checks segment `seg`'s header once: mapped, on-device, magic,
    /// `first_lsn`, checksum.
    fn verify_segment(&mut self, seg: u64) -> bool {
        if self.verified.contains(&seg) {
            return true;
        }
        let Some(idx) = seg.checked_sub(self.map.first_seg) else {
            return false;
        };
        let Some(&slot) = self.map.slots.get(idx as usize) else {
            return false;
        };
        let header = self.map.header_page(slot);
        if header.raw() + self.map.seg_pages > self.disk.num_pages() {
            return false;
        }
        let mut buf = vec![0u8; self.ps];
        if self.disk.read_page(header, &mut buf).is_err() {
            return false;
        }
        let mut h = Fnv::new();
        h.update(&buf[..16]);
        if get_u32(&buf, 0) != SEG_MAGIC
            || get_u64(&buf, 8) != seg * self.map.payload_bytes(self.ps)
            || get_u64(&buf, 16) != h.finish()
        {
            return false;
        }
        self.verified.insert(seg);
        true
    }

    /// Reads `len` stream bytes at `pos` into `out`; `false` if the range
    /// runs off the mapped, validated segments (the stream ends here).
    fn read(&mut self, pos: u64, len: usize, out: &mut Vec<u8>) -> bool {
        out.clear();
        let payload = self.map.payload_bytes(self.ps);
        let mut pos = pos;
        let mut remaining = len;
        while remaining > 0 {
            if !self.verify_segment(pos / payload) {
                return false;
            }
            let Some((page, off)) = self.map.locate(pos, self.ps) else {
                return false;
            };
            if self.cached_index != page.raw() {
                if self.disk.read_page(page, &mut self.cache).is_err() {
                    return false;
                }
                self.cached_index = page.raw();
            }
            let n = (self.ps - off).min(remaining);
            out.extend_from_slice(&self.cache[off..off + n]);
            pos += n as u64;
            remaining -= n;
        }
        true
    }
}

/// What a log scan found: the valid record prefix plus the high-water
/// marks of the monotone sequences embedded in it.
struct ScanResult {
    records: Vec<WalRecord>,
    /// Leading records up to and including the last Commit.
    committed: usize,
    /// Stream position just past that last Commit (== `start` if none).
    committed_end: u64,
    /// Highest commit sequence number seen (0 if none).
    max_seq: u64,
    /// Highest transaction id seen (0 if none).
    max_txn: u64,
}

impl ScanResult {
    fn empty(start: u64) -> ScanResult {
        ScanResult {
            records: Vec::new(),
            committed: 0,
            committed_end: start,
            max_seq: 0,
            max_txn: 0,
        }
    }
}

/// Scans the record stream from `start` (device-mapped via the anchor's
/// segment map) until the LSN/checksum chain breaks or the mapped
/// segments end.
fn scan_records(disk: &dyn DiskManager, ps: usize, map: &SegMap, start: u64) -> ScanResult {
    let mut reader = StreamReader::new(disk, ps, map);
    let mut out = ScanResult::empty(start);
    let mut pos = start;
    let mut hdr = Vec::new();
    let mut body = Vec::new();
    let max_body = (24 + 2 * ps).max(12 + 16 * MAX_CKPT_TXNS);
    loop {
        if !reader.read(pos, REC_HDR, &mut hdr) {
            break;
        }
        let lsn = get_u64(&hdr, 0);
        let body_len = get_u32(&hdr, 8) as usize;
        let kind = hdr[12];
        let crc = get_u64(&hdr, 13);
        if lsn != pos || body_len > max_body || !(KIND_FIRST_MOD..=KIND_CHECKPOINT).contains(&kind)
        {
            break;
        }
        if !reader.read(pos + REC_HDR as u64, body_len, &mut body) {
            break;
        }
        if record_checksum(lsn, kind, &[&body]) != crc {
            break;
        }
        let Some(rec) = decode_body(kind, &body, ps) else {
            break;
        };
        let end = pos + (REC_HDR + body_len) as u64;
        match &rec {
            WalRecord::FirstMod { txn, .. } | WalRecord::Delta { txn, .. } => {
                out.max_txn = out.max_txn.max(*txn);
            }
            WalRecord::Commit { seq, txn } => {
                out.max_seq = out.max_seq.max(*seq);
                out.max_txn = out.max_txn.max(*txn);
            }
            WalRecord::Checkpoint { horizon, active } => {
                // A horizon past its own record is nonsense: treat it as
                // the end of the valid chain.
                if *horizon > lsn {
                    break;
                }
                for &(txn, _) in active {
                    out.max_txn = out.max_txn.max(txn);
                }
            }
        }
        let is_commit = matches!(rec, WalRecord::Commit { .. });
        out.records.push(rec);
        if is_commit {
            out.committed = out.records.len();
            out.committed_end = end;
        }
        pos = end;
    }
    out
}

fn decode_body(kind: u8, body: &[u8], ps: usize) -> Option<WalRecord> {
    match kind {
        KIND_COMMIT => {
            if body.len() != 16 {
                return None;
            }
            Some(WalRecord::Commit { seq: get_u64(body, 0), txn: get_u64(body, 8) })
        }
        KIND_CHECKPOINT => {
            if body.len() < 12 {
                return None;
            }
            let horizon = get_u64(body, 0);
            let n = get_u32(body, 8) as usize;
            if n > MAX_CKPT_TXNS || body.len() != 12 + 16 * n {
                return None;
            }
            let active =
                (0..n).map(|i| (get_u64(body, 12 + 16 * i), get_u64(body, 20 + 16 * i))).collect();
            Some(WalRecord::Checkpoint { horizon, active })
        }
        KIND_FIRST_MOD | KIND_DELTA => {
            if body.len() < 24 {
                return None;
            }
            let page = PageId(get_u64(body, 0));
            let txn = get_u64(body, 8);
            let delta_off = get_u32(body, 16) as usize;
            let delta_len = get_u32(body, 20) as usize;
            if delta_off + delta_len > ps {
                return None;
            }
            if kind == KIND_FIRST_MOD {
                if body.len() != 24 + ps + delta_len {
                    return None;
                }
                Some(WalRecord::FirstMod {
                    page,
                    txn,
                    before: body[24..24 + ps].to_vec(),
                    delta_off,
                    delta: body[24 + ps..].to_vec(),
                })
            } else {
                if body.len() != 24 + delta_len {
                    return None;
                }
                Some(WalRecord::Delta { page, txn, delta_off, delta: body[24..].to_vec() })
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use std::sync::Arc;

    fn fresh_wal(ps: usize) -> (Arc<MemDisk>, Wal) {
        let disk = Arc::new(MemDisk::new(ps));
        let wal = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        (disk, wal)
    }

    fn fresh_wal_with(ps: usize, config: WalConfig) -> (Arc<MemDisk>, Wal) {
        let disk = Arc::new(MemDisk::new(ps));
        let wal = Wal::attach_with(Box::new(Arc::clone(&disk)), config).unwrap();
        (disk, wal)
    }

    /// Scans a device the way a fresh attach would: via its best anchor.
    fn scan_fresh(disk: &dyn DiskManager, ps: usize) -> ScanResult {
        let anchor = read_best_anchor(disk, ps).unwrap();
        scan_records(disk, ps, &anchor.map, anchor.start)
    }

    #[test]
    fn identical_images_log_nothing() {
        let (_d, wal) = fresh_wal(128);
        let img = vec![3u8; 128];
        assert_eq!(wal.log_update(PageId(5), &img, &img).unwrap(), 0);
        assert_eq!(wal.stats().records, 0);
        assert_eq!(wal.end_lsn(), 0);
    }

    #[test]
    fn first_mod_then_delta_then_commit_roundtrips_through_scan() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut v1 = old.clone();
        v1[10..20].copy_from_slice(&[7u8; 10]);
        let mut v2 = v1.clone();
        v2[100] = 9;
        assert!(wal.log_update(PageId(4), &old, &v1).unwrap() > 0);
        assert!(wal.log_update(PageId(4), &v1, &v2).unwrap() > 0);
        let end = wal.commit().unwrap();
        assert_eq!(wal.durable_lsn(), end);
        let s = wal.stats();
        assert_eq!((s.records, s.commits, s.commit_syncs, s.group_commits), (2, 1, 1, 0));
        drop(wal);

        // A fresh attach finds the full committed stream.
        let scan = scan_fresh(&*disk, 128);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.committed, 3);
        assert_eq!(scan.committed_end, end);
        assert_eq!((scan.max_seq, scan.max_txn), (1, 1));
        assert!(matches!(&scan.records[0],
            WalRecord::FirstMod { page, txn: 1, before, delta_off, delta }
            if *page == PageId(4) && before == &old && *delta_off == 10 && delta == &vec![7u8; 10]));
        assert!(matches!(&scan.records[1],
            WalRecord::Delta { page, txn: 1, delta_off, delta }
            if *page == PageId(4) && *delta_off == 100 && delta == &vec![9u8]));
        assert!(matches!(&scan.records[2], WalRecord::Commit { seq: 1, txn: 1 }));
    }

    #[test]
    fn uncommitted_tail_is_dropped_on_attach() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[0] = 1;
        wal.log_update(PageId(2), &old, &new).unwrap();
        let committed_end = wal.commit().unwrap();
        // An uncommitted record past the commit, flushed but not committed.
        let mut newer = new.clone();
        newer[1] = 2;
        let lsn = wal.log_update(PageId(2), &new, &newer).unwrap();
        wal.make_durable(lsn).unwrap();
        drop(wal);

        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal2.take_recovered().unwrap();
        assert_eq!(log.records.len(), 3, "commit + committed mod + tail mod");
        assert_eq!(log.committed, 2);
        assert_eq!(wal2.end_lsn(), committed_end, "appends resume at the commit boundary");
    }

    #[test]
    fn checkpoint_truncates_and_old_records_are_not_rescanned() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[5] = 5;
        wal.log_update(PageId(9), &old, &new).unwrap();
        wal.commit().unwrap();
        wal.checkpoint(wal.end_lsn()).unwrap();
        assert_eq!(wal.stats().checkpoints, 1);
        drop(wal);

        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        assert!(wal2.take_recovered().is_none(), "truncated log has no records");
        // Appends resume past the truncated region without tripping over
        // the stale record bytes still physically present below `start`.
        let mut v2 = new.clone();
        v2[6] = 6;
        wal2.log_update(PageId(9), &new, &v2).unwrap();
        let end = wal2.commit().unwrap();
        drop(wal2);
        let wal3 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal3.take_recovered().unwrap();
        assert_eq!(log.committed, 2);
        assert_eq!(wal3.end_lsn(), end);
    }

    #[test]
    fn records_spanning_many_pages_survive() {
        // Page size 128 but FirstMod bodies are > 128 bytes: every record
        // spans pages, partial tail pages are append-rewritten.
        let (disk, wal) = fresh_wal(128);
        let mut prev = vec![0u8; 128];
        let mut ends = Vec::new();
        for i in 0..20u8 {
            let mut next = prev.clone();
            next[(i as usize * 5) % 128] = i + 1;
            assert!(wal.log_update(PageId(u64::from(i) % 3), &prev, &next).unwrap() > 0);
            ends.push(wal.commit().unwrap());
            prev = next;
        }
        drop(wal);
        let scan = scan_fresh(&*disk, 128);
        assert_eq!(scan.records.len(), 40, "20 mods + 20 commits");
        assert_eq!(scan.committed, 40);
        assert_eq!(scan.committed_end, *ends.last().unwrap());
    }

    #[test]
    fn torn_tail_page_breaks_the_chain_cleanly() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[0] = 1;
        wal.log_update(PageId(1), &old, &new).unwrap();
        wal.commit().unwrap();
        let end = wal.end_lsn();
        drop(wal);
        // Corrupt one byte in the middle of the committed record's body.
        // Segment 0 lives in slot 0: header on device page 2, payload
        // pages from 3.
        let victim = PageId(3 + (end / 2) / 128);
        let mut page = vec![0u8; 128];
        disk.read_page(victim, &mut page).unwrap();
        page[(end / 2 % 128) as usize] ^= 0xFF;
        disk.write_page(victim, &page).unwrap();
        let scan = scan_fresh(&*disk, 128);
        assert_eq!(scan.records.len(), 0, "checksum break stops the scan");
        assert_eq!(scan.committed, 0);
    }

    #[test]
    fn commit_accounting_identity_holds_under_threads() {
        let wal = Arc::new({
            let disk = MemDisk::new(256);
            Wal::attach(Box::new(disk)).unwrap()
        });
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    let mut prev = vec![0u8; 256];
                    for i in 0..50u8 {
                        let mut next = prev.clone();
                        next[t as usize * 8] = i.wrapping_add(1);
                        wal.log_update(PageId(t), &prev, &next).unwrap();
                        wal.commit().unwrap();
                        prev = next;
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let s = wal.stats();
        assert_eq!(s.commits, 200);
        assert_eq!(s.commit_syncs + s.group_commits, s.commits, "exact commit accounting");
        assert_eq!(s.syncs, s.commit_syncs + s.forced_syncs + s.checkpoint_syncs);
        assert_eq!(wal.durable_lsn(), wal.end_lsn());
    }

    #[test]
    fn fuzzy_checkpoint_spares_the_open_transactions_records() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut v1 = old.clone();
        v1[0] = 1;
        // A committed transaction, fully flushed...
        wal.log_update(PageId(1), &old, &v1).unwrap();
        wal.commit().unwrap();
        // ...then an open transaction whose record reaches the device.
        let lsn = wal.log_update(PageId(2), &old, &v1).unwrap();
        wal.make_durable(lsn).unwrap();
        let fence = wal.end_lsn();
        wal.checkpoint(fence).unwrap();
        let s = wal.stats();
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.checkpoint_syncs, 2, "record flush + anchor rewrite");
        assert_eq!(s.syncs, s.commit_syncs + s.forced_syncs + s.checkpoint_syncs);
        drop(wal);

        // The committed generation was truncated, but the open
        // transaction's FirstMod pre-image survives for rollback, followed
        // by the CheckpointBegin naming it.
        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal2.take_recovered().unwrap();
        assert_eq!(log.committed, 0, "nothing at or above the horizon is committed");
        assert_eq!(log.records.len(), 2);
        assert!(matches!(&log.records[0],
            WalRecord::FirstMod { page, txn, before, .. }
            if *page == PageId(2) && *txn == 2 && before == &old));
        assert!(matches!(&log.records[1],
            WalRecord::Checkpoint { active, .. } if active.len() == 1 && active[0].0 == 2));
    }

    #[test]
    fn fuzzy_then_idle_checkpoint_truncates_everything() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut v1 = old.clone();
        v1[3] = 3;
        // Open transaction at checkpoint time: horizon pins to its first
        // record (LSN 0), so the start cannot move at all.
        wal.log_update(PageId(5), &old, &v1).unwrap();
        wal.checkpoint(wal.end_lsn()).unwrap();
        assert_eq!(wal.stats().checkpoints, 1);
        // Commit closes the run; a second checkpoint moves `start` to the
        // very end, so the whole log is logically empty.
        wal.commit().unwrap();
        wal.checkpoint(wal.end_lsn()).unwrap();
        drop(wal);
        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        assert!(wal2.take_recovered().is_none(), "truncated log has no records");
        // Appending past the truncated prefix still works after the fuzzy
        // interlude.
        let mut v2 = v1.clone();
        v2[4] = 4;
        wal2.log_update(PageId(5), &v1, &v2).unwrap();
        let end = wal2.commit().unwrap();
        drop(wal2);
        let wal3 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal3.take_recovered().unwrap();
        assert_eq!(log.committed, 2);
        assert_eq!(wal3.end_lsn(), end);
    }

    #[test]
    fn straddling_page_run_drags_the_horizon_down() {
        let (disk, wal) = fresh_wal(128);
        let old = vec![0u8; 128];
        let mut v1 = old.clone();
        v1[7] = 7;
        let mut v2 = v1.clone();
        v2[8] = 8;
        // FirstMod below the fence, Delta above it, then a commit: the
        // fixpoint must refuse to orphan the Delta and keep everything.
        wal.log_update(PageId(7), &old, &v1).unwrap();
        let fence = wal.end_lsn();
        wal.log_update(PageId(7), &v1, &v2).unwrap();
        wal.commit().unwrap();
        wal.checkpoint(fence).unwrap();
        drop(wal);
        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal2.take_recovered().unwrap();
        assert_eq!(log.committed, 3, "FirstMod + Delta + Commit all survive");
        assert!(
            matches!(&log.records[0], WalRecord::FirstMod { page, .. } if *page == PageId(7)),
            "the pre-image stayed below the horizon"
        );
    }

    #[test]
    fn log_rolls_over_into_new_segments() {
        // seg_pages = 2 at ps = 128 leaves a single 128-byte payload page
        // per segment, so every commit straddles several rollovers.
        let config = WalConfig { segment_pages: 2, flush_policy: FlushPolicy::Off };
        let (disk, wal) = fresh_wal_with(128, config);
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[9] = 9;
        for _ in 0..8 {
            wal.log_update(PageId(9), &old, &new).unwrap();
            wal.commit().unwrap();
        }
        let s = wal.stats();
        assert!(s.segments_created >= 6, "tiny segments must force rollovers: {s:?}");
        let end = wal.end_lsn();
        drop(wal);
        // A fresh attach reads seg_pages back from the anchor, walks the
        // segment map, and finds every committed record.
        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal2.take_recovered().unwrap();
        assert_eq!(log.committed, 16, "8 FirstMods + 8 Commits span the segment chain");
        assert_eq!(wal2.end_lsn(), end);
    }

    #[test]
    fn checkpoint_retires_whole_segments_and_recycles_their_slots() {
        let config = WalConfig { segment_pages: 2, flush_policy: FlushPolicy::Off };
        let (disk, wal) = fresh_wal_with(128, config);
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[1] = 1;
        for _ in 0..6 {
            wal.log_update(PageId(4), &old, &new).unwrap();
            wal.commit().unwrap();
        }
        wal.checkpoint(wal.end_lsn()).unwrap();
        let s = wal.stats();
        assert!(s.segments_retired >= 4, "segments wholly below start must retire: {s:?}");
        // Keep writing through more checkpoints: retired slots are
        // recycled, so the device ends up with fewer slots than segments
        // ever created.
        for _ in 0..6 {
            wal.log_update(PageId(4), &old, &new).unwrap();
            wal.commit().unwrap();
            wal.checkpoint(wal.end_lsn()).unwrap();
        }
        let s2 = wal.stats();
        assert!(s2.segments_created > s.segments_created, "the tail kept rolling over");
        let device_slots = (disk.num_pages() - 2) / 2;
        assert!(
            device_slots < s2.segments_created,
            "recycling must reuse slots: {} slots on device, {} segments created",
            device_slots,
            s2.segments_created
        );
    }

    #[test]
    fn torn_anchor_write_falls_back_to_the_other_anchor() {
        // Enough traffic for at least one rollover, then a checkpoint with
        // fence 0: it rewrites the anchor (same map, same start) without
        // retiring anything, so the two on-device anchors describe the
        // same committed stream.
        let config = WalConfig { segment_pages: 4, flush_policy: FlushPolicy::Off };
        let (disk, wal) = fresh_wal_with(128, config);
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[5] = 5;
        for _ in 0..4 {
            wal.log_update(PageId(8), &old, &new).unwrap();
            wal.commit().unwrap();
        }
        wal.checkpoint(0).unwrap();
        assert!(wal.stats().segments_created >= 2, "need at least one rollover");
        drop(wal);

        // Torch the page holding the *newest* anchor, as a torn anchor
        // rewrite would: recovery must fall back to the older twin.
        let best = read_best_anchor(&*disk, 128).unwrap();
        disk.write_page(PageId(best.seq & 1), &[0xAA; 128]).unwrap();

        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal2.take_recovered().unwrap();
        assert_eq!(log.committed, 8, "the fallback anchor still maps every segment");
        // The survivor is fully operational: new appends commit and
        // survive yet another attach.
        wal2.log_update(PageId(8), &new, &old).unwrap();
        let end = wal2.commit().unwrap();
        drop(wal2);
        let wal3 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        assert_eq!(wal3.end_lsn(), end);
        assert_eq!(wal3.take_recovered().unwrap().committed, 10);
    }

    #[test]
    fn full_segment_map_reports_a_clean_error() {
        // ps = 128 caps the anchor at (128 - 48) / 4 = 20 slots; with
        // 128-byte segments and no checkpoints the map must fill up.
        let config = WalConfig { segment_pages: 2, flush_policy: FlushPolicy::Off };
        let (_d, wal) = fresh_wal_with(128, config);
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[2] = 2;
        let mut hit = None;
        for _ in 0..200 {
            if let Err(e) = wal.log_update(PageId(3), &old, &new).and_then(|_| wal.commit()) {
                hit = Some(e);
                break;
            }
        }
        match hit {
            Some(Error::InvalidArgument(msg)) => {
                assert!(msg.contains("segment map full"), "unexpected message: {msg}")
            }
            other => panic!("expected a segment-map-full error, got {other:?}"),
        }
    }

    #[test]
    fn background_flusher_drains_ahead_of_commit() {
        let config = WalConfig {
            segment_pages: 4,
            flush_policy: FlushPolicy::Background { watermark_bytes: 64 },
        };
        let disk = Arc::new(MemDisk::new(128));
        let wal = Arc::new(Wal::attach_with(Box::new(Arc::clone(&disk)), config).unwrap());
        let runner = {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || wal.flusher_run())
        };
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[6] = 6;
        for _ in 0..4 {
            wal.log_update(PageId(6), &old, &new).unwrap();
        }
        // Each append crossed the 64-byte watermark, so the flusher was
        // woken; wait for it to drain at least once.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while wal.stats().flusher_writes == 0 {
            assert!(std::time::Instant::now() < deadline, "flusher never drained the buffer");
            std::thread::yield_now();
        }
        assert!(wal.stats().flusher_bytes > 0);
        // Commit still waits for its own durability (the flusher never
        // syncs), and the sync ledger stays exact.
        let end = wal.commit().unwrap();
        assert_eq!(wal.durable_lsn(), end, "commit returns only once durable");
        let s = wal.stats();
        assert_eq!(s.syncs, s.commit_syncs + s.forced_syncs + s.checkpoint_syncs);
        wal.flusher_stop();
        runner.join().unwrap();
        drop(wal);
        let wal2 = Wal::attach(Box::new(Arc::clone(&disk))).unwrap();
        let log = wal2.take_recovered().unwrap();
        assert_eq!(log.committed, 5, "FirstMod + three Deltas + Commit all recovered");
    }

    #[test]
    fn double_rollover_in_one_flush_pre_syncs_the_anchor() {
        // seg_pages = 2 at ps = 128: a single 211-byte commit flush spans
        // segments 0 and 1, so two anchor rewrites happen inside one
        // flush.  The second lands on the page of the only durable anchor
        // (parities alternate) and must be preceded by a guard sync —
        // otherwise a torn write there, with the first rollover's anchor
        // never destaged, would leave no usable anchor at all.
        let config = WalConfig { segment_pages: 2, flush_policy: FlushPolicy::Off };
        let (disk, wal) = fresh_wal_with(128, config);
        let old = vec![0u8; 128];
        let mut new = old.clone();
        new[9] = 9;
        wal.log_update(PageId(9), &old, &new).unwrap();
        let end = wal.commit().unwrap();
        let s = wal.stats();
        assert_eq!(s.segments_created, 2, "the flush must straddle one rollover: {s:?}");
        assert_eq!(
            (s.commit_syncs, s.forced_syncs, s.syncs),
            (1, 1, 2),
            "the second rollover's anchor guard must sync once, attributed as forced: {s:?}"
        );
        assert_eq!(s.syncs, s.commit_syncs + s.forced_syncs + s.checkpoint_syncs);
        assert_eq!(wal.durable_lsn(), end);
        drop(wal);
        let scan = scan_fresh(&*disk, 128);
        assert_eq!(scan.committed, 2, "FirstMod + Commit recovered across the rollovers");
    }

    #[test]
    fn kill_at_every_write_with_tiny_segments_keeps_every_durable_commit() {
        use crate::disk::MemDisk;
        use crate::faulty::{CrashPlan, FaultClock, FaultPlan, FaultyDisk};
        // seg_pages = 2 at ps = 128: every commit's flush crosses one or
        // more rollovers, so anchor rewrites outnumber syncs — the
        // geometry where an unsynced rollover anchor write can land on
        // the page holding the only durable anchor.  Kill the machine at
        // every global write index, torn and clean, across persistence
        // seeds: whatever survives, a reattach must find an intact
        // anchor mapping every commit that returned before the cut.
        const COMMITS: usize = 6;
        let config = WalConfig { segment_pages: 2, flush_policy: FlushPolicy::Off };
        let old = vec![0u8; 128];
        for torn in [0usize, 1] {
            for seed in [1u64, 7, 23, 41] {
                let mut crash_at = 0u64;
                loop {
                    let mem = Arc::new(MemDisk::new(128));
                    let clock = FaultClock::new();
                    let faulty = Arc::new(FaultyDisk::with_clock(
                        Arc::clone(&mem),
                        FaultPlan::default(),
                        Arc::clone(&clock),
                    ));
                    let wal = Wal::attach_with(Box::new(Arc::clone(&faulty)), config).unwrap();
                    // The clock counts from device creation, so index the
                    // sweep past the writes the attach already consumed.
                    let base = faulty.writes_attempted();
                    clock.arm_crash(CrashPlan {
                        crash_at_write: Some(base + crash_at),
                        torn_sectors: torn,
                        sector_bytes: 32,
                        persist_seed: seed,
                        ..CrashPlan::default()
                    });
                    let mut survived = 0usize;
                    for i in 0..COMMITS {
                        let mut img = old.clone();
                        img[i] = i as u8 + 1;
                        let res =
                            wal.log_update(PageId(i as u64), &old, &img).and_then(|_| wal.commit());
                        match res {
                            Ok(_) => survived = i + 1,
                            Err(_) => break,
                        }
                    }
                    let done = !clock.crashed();
                    drop(wal);
                    faulty.settle_crash();
                    if done {
                        break; // crash index past the whole workload: sweep over
                    }
                    let ctx = format!("crash at write {crash_at} (torn {torn}, seed {seed})");
                    let wal2 = Wal::attach(Box::new(Arc::clone(&mem)))
                        .unwrap_or_else(|e| panic!("{ctx}: reattach failed: {e:?}"));
                    let committed = wal2.take_recovered().map_or(0, |log| log.committed);
                    assert!(
                        committed >= 2 * survived,
                        "{ctx}: {survived} commits returned but only {committed} committed \
                         records recovered — a durable anchor was destroyed"
                    );
                    assert_eq!(committed % 2, 0, "{ctx}: half a transaction recovered");
                    crash_at += 1;
                }
            }
        }
    }

    #[test]
    fn checkpoint_relieves_a_full_segment_map() {
        // ps = 128 caps the anchor map at 20 slots; distinct pages keep
        // every FirstMod run short, so nothing pins the horizon.  Fill
        // the map until an append wedges on "segment map full" with the
        // failed commit's bytes stuck in the pending backlog — then a
        // checkpoint must retire the flushed segments *before* its own
        // record flush, drain the backlog into the freed slots, and
        // leave the log fully operational.
        let config = WalConfig { segment_pages: 2, flush_policy: FlushPolicy::Off };
        let (disk, wal) = fresh_wal_with(128, config);
        let old = vec![0u8; 128];
        let mut wedged = false;
        for i in 0..200u64 {
            let mut img = old.clone();
            img[(i % 128) as usize] = 1;
            if wal.log_update(PageId(i), &old, &img).and_then(|_| wal.commit()).is_err() {
                wedged = true;
                break;
            }
        }
        assert!(wedged, "the tiny anchor map must fill up");
        // Pre-fix, this checkpoint died on the very map-full error it was
        // advised to fix: its record flush ran before any retirement.
        wal.checkpoint(wal.end_lsn()).expect("checkpoint must relieve the full map");
        let s = wal.stats();
        assert!(s.segments_retired > 0, "relief must retire segments: {s:?}");
        // The log is unwedged: fresh commits append and survive attach.
        for i in 0..4u64 {
            let mut img = old.clone();
            img[1] = i as u8 + 1;
            wal.log_update(PageId(1000 + i), &old, &img).unwrap();
            wal.commit().unwrap();
        }
        let s = wal.stats();
        assert_eq!(s.syncs, s.commit_syncs + s.forced_syncs + s.checkpoint_syncs);
        drop(wal);
        let scan = scan_fresh(&*disk, 128);
        assert_eq!(scan.committed, 8, "the four post-relief commits all recovered");
    }
}
