//! I/O statistics and the disk latency model.
//!
//! The paper reports two cost metrics per experiment: *physical disk block
//! accesses* (what the buffer pool actually fetched from / wrote to the
//! device) and *response time* in seconds on a Pentium Pro/180 with a U-SCSI
//! drive.  Physical accesses are deterministic and portable, so they are the
//! primary metric here too.  To also reproduce the *shape* of the response
//! time plots, [`LatencyModel`] charges a fixed cost per physical block
//! access, calibrated to a late-1990s SCSI disk.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O counters.
///
/// One instance is owned by each [`crate::BufferPool`]; higher layers obtain
/// a handle via [`crate::BufferPool::stats`] and diff [`IoSnapshot`]s around
/// the operation they want to measure — the same methodology as reading
/// Oracle's `physical reads` session statistic before and after a query.
#[derive(Debug, Default)]
pub struct IoStats {
    logical_reads: AtomicU64,
    logical_writes: AtomicU64,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    coalesced_faults: AtomicU64,
    lock_free_reads: AtomicU64,
}

impl IoStats {
    /// Creates a zeroed counter set behind an [`Arc`].
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records a buffer-pool hit or miss read request.
    #[inline]
    pub fn record_logical_read(&self) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page modification request.
    #[inline]
    pub fn record_logical_write(&self) {
        self.logical_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a block fetched from the device.
    #[inline]
    pub fn record_physical_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a block written back to the device.
    #[inline]
    pub fn record_physical_write(&self) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fault that found its page already being fetched by
    /// another thread and blocked on that in-flight read instead of
    /// issuing a duplicate device read (single-flight coalescing).
    #[inline]
    pub fn record_coalesced_fault(&self) {
        self.coalesced_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a device read performed *outside* the shard lock (the
    /// promoted miss path).  Every miss fetch since the three-phase
    /// protocol is one of these; the counter exists so benchmarks and
    /// tests can assert that no read snuck back under the lock.
    #[inline]
    pub fn record_lock_free_read(&self) {
        self.lock_free_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the four classic I/O counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            logical_writes: self.logical_writes.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
        }
    }

    /// Takes a point-in-time copy of the miss-promotion counters.
    ///
    /// These live beside (not inside) [`IoSnapshot`] because the golden
    /// determinism suites compare `IoSnapshot` literals captured from the
    /// seed implementation; the seed had no notion of these events.
    pub fn miss_snapshot(&self) -> MissSnapshot {
        MissSnapshot {
            coalesced_faults: self.coalesced_faults.load(Ordering::Relaxed),
            lock_free_reads: self.lock_free_reads.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero (useful between experiment phases).
    pub fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.logical_writes.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.coalesced_faults.store(0, Ordering::Relaxed);
        self.lock_free_reads.store(0, Ordering::Relaxed);
    }
}

/// Aggregating handle over a sharded pool's per-shard [`IoStats`].
///
/// The buffer pool keeps one counter set *per shard* so that concurrent
/// accesses to different shards never contend on a shared cache line.
/// This handle sums them on demand: every event is recorded in exactly one
/// shard's counters, so the aggregate is lossless — in a quiesced pool,
/// [`PoolStats::snapshot`] equals the counters a single global [`IoStats`]
/// would have accumulated.
///
/// Cloning is cheap and shares the underlying counters, so a handle taken
/// before a workload observes everything the pool does afterwards.
#[derive(Clone, Debug)]
pub struct PoolStats {
    shards: Arc<[Arc<IoStats>]>,
}

impl PoolStats {
    /// Wraps one counter set per shard.
    pub fn new(shards: Vec<Arc<IoStats>>) -> Self {
        assert!(!shards.is_empty(), "a pool has at least one shard");
        PoolStats { shards: shards.into() }
    }

    /// Number of shards contributing counters.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lossless aggregate of all shards' counters.
    pub fn snapshot(&self) -> IoSnapshot {
        let mut total = IoSnapshot::default();
        for s in self.shards.iter() {
            total.accumulate(&s.snapshot());
        }
        total
    }

    /// Point-in-time copy of each shard's own counters, in shard order.
    ///
    /// This is what the concurrency benchmark feeds its contention model:
    /// accesses counted against one shard serialize behind that shard's
    /// lock, accesses in different shards proceed in parallel.
    pub fn per_shard(&self) -> Vec<IoSnapshot> {
        self.shards.iter().map(|s| s.snapshot()).collect()
    }

    /// Lossless aggregate of all shards' miss-promotion counters.
    pub fn miss_snapshot(&self) -> MissSnapshot {
        let mut total = MissSnapshot::default();
        for s in self.shards.iter() {
            total.accumulate(&s.miss_snapshot());
        }
        total
    }

    /// Resets every shard's counters to zero.
    pub fn reset(&self) {
        for s in self.shards.iter() {
            s.reset();
        }
    }
}

/// Point-in-time copy of the miss-promotion counters (see
/// [`IoStats::miss_snapshot`] for why these are not part of
/// [`IoSnapshot`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MissSnapshot {
    /// Faults that coalesced onto another thread's in-flight device read
    /// instead of issuing their own (single-flight).
    pub coalesced_faults: u64,
    /// Device reads performed outside the shard lock (every miss fetch
    /// under the three-phase protocol).
    pub lock_free_reads: u64,
}

impl MissSnapshot {
    /// Counter-wise accumulation `self += other`.
    pub fn accumulate(&mut self, other: &MissSnapshot) {
        self.coalesced_faults += other.coalesced_faults;
        self.lock_free_reads += other.lock_free_reads;
    }

    /// Counter-wise difference `self - earlier`; saturates at zero.
    pub fn since(&self, earlier: &MissSnapshot) -> MissSnapshot {
        MissSnapshot {
            coalesced_faults: self.coalesced_faults.saturating_sub(earlier.coalesced_faults),
            lock_free_reads: self.lock_free_reads.saturating_sub(earlier.lock_free_reads),
        }
    }
}

/// Point-in-time copy of [`IoStats`], with arithmetic for diffing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Page read requests served by the pool (hits + misses).
    pub logical_reads: u64,
    /// Page write requests served by the pool.
    pub logical_writes: u64,
    /// Blocks fetched from the device (cache misses).
    pub physical_reads: u64,
    /// Blocks written back to the device (evictions + flushes).
    pub physical_writes: u64,
}

impl IoSnapshot {
    /// Counter-wise accumulation `self += other` — the one place that
    /// knows how to sum snapshots, shared by every aggregation site.
    pub fn accumulate(&mut self, other: &IoSnapshot) {
        self.logical_reads += other.logical_reads;
        self.logical_writes += other.logical_writes;
        self.physical_reads += other.physical_reads;
        self.physical_writes += other.physical_writes;
    }

    /// Counter-wise difference `self - earlier`; saturates at zero.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads.saturating_sub(earlier.logical_reads),
            logical_writes: self.logical_writes.saturating_sub(earlier.logical_writes),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
        }
    }

    /// Total physical block accesses — the paper's "disk accesses" metric.
    pub fn physical_total(&self) -> u64 {
        self.physical_reads + self.physical_writes
    }

    /// Buffer-cache hit ratio over the covered period (reads only).
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            return 1.0;
        }
        1.0 - (self.physical_reads as f64 / self.logical_reads as f64)
    }
}

/// Charges a fixed latency per physical block access.
///
/// The defaults approximate the paper's U-SCSI disk on a Pentium Pro/180:
/// roughly 8 ms average seek + 4 ms rotational delay + transfer for a 2 KB
/// block, i.e. ≈ 12.5 ms per *random* physical read, and a slightly cheaper
/// write (writes cluster at eviction time).  CPU cost per examined row is
/// folded in by callers that measure their own row counts.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Seconds charged per physical block read.
    pub seconds_per_read: f64,
    /// Seconds charged per physical block write.
    pub seconds_per_write: f64,
    /// Seconds charged per row touched by the query executor, emulating the
    /// interpretation overhead of a late-1990s SQL engine.
    pub seconds_per_row: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel { seconds_per_read: 0.0125, seconds_per_write: 0.010, seconds_per_row: 4.0e-6 }
    }
}

impl LatencyModel {
    /// Simulated elapsed seconds for the I/O volume in `snap`, plus
    /// `rows_touched` rows of executor CPU work.
    pub fn simulate(&self, snap: &IoSnapshot, rows_touched: u64) -> f64 {
        snap.physical_reads as f64 * self.seconds_per_read
            + snap.physical_writes as f64 * self.seconds_per_write
            + rows_touched as f64 * self.seconds_per_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diffing() {
        let s = IoStats::default();
        s.record_logical_read();
        s.record_physical_read();
        let a = s.snapshot();
        s.record_logical_read();
        s.record_logical_read();
        s.record_physical_write();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.logical_reads, 2);
        assert_eq!(d.physical_reads, 0);
        assert_eq!(d.physical_writes, 1);
        assert_eq!(d.physical_total(), 1);
    }

    #[test]
    fn hit_ratio_bounds() {
        let empty = IoSnapshot::default();
        assert_eq!(empty.hit_ratio(), 1.0);
        let all_miss = IoSnapshot { logical_reads: 10, physical_reads: 10, ..Default::default() };
        assert_eq!(all_miss.hit_ratio(), 0.0);
        let half = IoSnapshot { logical_reads: 10, physical_reads: 5, ..Default::default() };
        assert!((half.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn latency_model_is_linear_in_io() {
        let m = LatencyModel::default();
        let one = IoSnapshot { physical_reads: 1, ..Default::default() };
        let ten = IoSnapshot { physical_reads: 10, ..Default::default() };
        assert!((m.simulate(&ten, 0) - 10.0 * m.simulate(&one, 0)).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = IoStats::default();
        s.record_physical_read();
        s.record_coalesced_fault();
        s.record_lock_free_read();
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
        assert_eq!(s.miss_snapshot(), MissSnapshot::default());
    }

    #[test]
    fn miss_counters_live_beside_the_classic_four() {
        let s = IoStats::default();
        s.record_coalesced_fault();
        s.record_lock_free_read();
        s.record_lock_free_read();
        // The classic snapshot is untouched by miss-promotion events…
        assert_eq!(s.snapshot(), IoSnapshot::default());
        // …and the miss snapshot diffs like the classic one.
        let a = s.miss_snapshot();
        assert_eq!((a.coalesced_faults, a.lock_free_reads), (1, 2));
        s.record_coalesced_fault();
        let d = s.miss_snapshot().since(&a);
        assert_eq!((d.coalesced_faults, d.lock_free_reads), (1, 0));
    }
}
