//! Block devices: the trait plus in-memory and file-backed implementations.

use crate::error::{Error, Result};
use crate::page::PageId;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A device of fixed-size blocks addressed by dense [`PageId`]s.
///
/// Implementations must be internally synchronized; the buffer pool calls
/// them from behind its own lock but tests may not.
pub trait DiskManager: Send + Sync {
    /// Size in bytes of every block on this device.
    fn page_size(&self) -> usize;

    /// Number of allocated pages; valid ids are `0..num_pages()`.
    fn num_pages(&self) -> u64;

    /// Reads page `id` into `buf` (`buf.len() == page_size()`).
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Writes `buf` to page `id` (`buf.len() == page_size()`).
    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()>;

    /// Appends a zeroed page and returns its id.
    fn allocate_page(&self) -> Result<PageId>;

    /// Durably flushes device buffers (no-op for the in-memory disk).
    fn sync(&self) -> Result<()>;
}

/// Shared handles forward: a pool can own `Arc<D>` while the test (or
/// operator tooling) keeps a second handle to adjust fault plans, read
/// hooks, or counters on the live device — `tests/miss_promotion.rs`
/// drives the promoted miss path this way.
impl<D: DiskManager + ?Sized> DiskManager for std::sync::Arc<D> {
    fn page_size(&self) -> usize {
        (**self).page_size()
    }

    fn num_pages(&self) -> u64 {
        (**self).num_pages()
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        (**self).read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        (**self).write_page(id, buf)
    }

    fn allocate_page(&self) -> Result<PageId> {
        (**self).allocate_page()
    }

    fn sync(&self) -> Result<()> {
        (**self).sync()
    }
}

/// Volatile block device backed by a `Vec` of boxed pages.
///
/// This is what the experiments run on: physical I/O is counted by the
/// buffer pool, while the device itself is deliberately simple and fast so
/// figure regeneration stays laptop-scale.
pub struct MemDisk {
    page_size: usize,
    pages: Mutex<Vec<Box<[u8]>>>,
}

impl MemDisk {
    /// Creates an empty in-memory device with the given page size.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size too small to be useful");
        MemDisk { page_size, pages: Mutex::new(Vec::new()) }
    }
}

impl DiskManager for MemDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        let pages = self.pages.lock();
        let page = pages
            .get(id.raw() as usize)
            .ok_or(Error::PageOutOfBounds { page: id.raw(), num_pages: pages.len() as u64 })?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        let mut pages = self.pages.lock();
        let n = pages.len() as u64;
        let page = pages
            .get_mut(id.raw() as usize)
            .ok_or(Error::PageOutOfBounds { page: id.raw(), num_pages: n })?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate_page(&self) -> Result<PageId> {
        let mut pages = self.pages.lock();
        pages.push(vec![0u8; self.page_size].into_boxed_slice());
        Ok(PageId(pages.len() as u64 - 1))
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// Persistent block device backed by a single file.
///
/// Used by the persistence integration tests to show that an RI-tree
/// database survives a close/reopen cycle, as any relational database would.
pub struct FileDisk {
    page_size: usize,
    inner: Mutex<FileDiskInner>,
}

struct FileDiskInner {
    file: File,
    num_pages: u64,
}

impl FileDisk {
    /// Opens (or creates) the file at `path` as a block device.
    ///
    /// An existing file must contain a whole number of pages of the given
    /// size, otherwise [`Error::Corrupt`] is returned.
    pub fn open(path: &Path, page_size: usize) -> Result<Self> {
        assert!(page_size >= 64, "page size too small to be useful");
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(Error::Corrupt(format!(
                "file length {len} is not a multiple of page size {page_size}"
            )));
        }
        Ok(FileDisk {
            page_size,
            inner: Mutex::new(FileDiskInner { file, num_pages: len / page_size as u64 }),
        })
    }
}

impl DiskManager for FileDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u64 {
        self.inner.lock().num_pages
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        let mut inner = self.inner.lock();
        if id.raw() >= inner.num_pages {
            return Err(Error::PageOutOfBounds { page: id.raw(), num_pages: inner.num_pages });
        }
        inner.file.seek(SeekFrom::Start(id.raw() * self.page_size as u64))?;
        inner.file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        let mut inner = self.inner.lock();
        if id.raw() >= inner.num_pages {
            return Err(Error::PageOutOfBounds { page: id.raw(), num_pages: inner.num_pages });
        }
        inner.file.seek(SeekFrom::Start(id.raw() * self.page_size as u64))?;
        inner.file.write_all(buf)?;
        Ok(())
    }

    fn allocate_page(&self) -> Result<PageId> {
        let mut inner = self.inner.lock();
        let id = inner.num_pages;
        let zeroes = vec![0u8; self.page_size];
        inner.file.seek(SeekFrom::Start(id * self.page_size as u64))?;
        inner.file.write_all(&zeroes)?;
        inner.num_pages += 1;
        Ok(PageId(id))
    }

    fn sync(&self) -> Result<()> {
        self.inner.lock().file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(disk: &dyn DiskManager) {
        let a = disk.allocate_page().unwrap();
        let b = disk.allocate_page().unwrap();
        assert_ne!(a, b);
        let ps = disk.page_size();
        let mut buf = vec![7u8; ps];
        disk.write_page(b, &buf).unwrap();
        buf.fill(0);
        disk.read_page(b, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 7));
        // Page `a` stays zeroed.
        disk.read_page(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0));
    }

    #[test]
    fn mem_disk_roundtrip() {
        let disk = MemDisk::new(256);
        roundtrip(&disk);
        assert_eq!(disk.num_pages(), 2);
    }

    #[test]
    fn mem_disk_out_of_bounds() {
        let disk = MemDisk::new(128);
        let mut buf = vec![0u8; 128];
        assert!(matches!(disk.read_page(PageId(0), &mut buf), Err(Error::PageOutOfBounds { .. })));
        assert!(matches!(disk.write_page(PageId(5), &buf), Err(Error::PageOutOfBounds { .. })));
    }

    #[test]
    fn file_disk_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("ri-pagestore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk.db");
        let _ = std::fs::remove_file(&path);
        {
            let disk = FileDisk::open(&path, 256).unwrap();
            roundtrip(&disk);
            disk.sync().unwrap();
        }
        // Reopen: data persisted.
        let disk = FileDisk::open(&path, 256).unwrap();
        assert_eq!(disk.num_pages(), 2);
        let mut buf = vec![0u8; 256];
        disk.read_page(PageId(1), &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 7));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_disk_rejects_torn_file() {
        let dir = std::env::temp_dir().join(format!("ri-pagestore-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.db");
        std::fs::write(&path, vec![0u8; 300]).unwrap();
        assert!(matches!(FileDisk::open(&path, 256), Err(Error::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }
}
