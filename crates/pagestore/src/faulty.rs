//! Fault-injecting disk wrapper for failure testing.
//!
//! Wraps any [`DiskManager`] and fails selected operations according to a
//! [`FaultPlan`].  The integration tests use this to verify that I/O errors
//! propagate cleanly through the B+-tree and relational layers (no panics,
//! no partially-applied page writes observed after the failure is lifted).
//!
//! Beyond failures, the wrapper injects **latency and ordering**: a
//! [`ReadHook`] runs before every device read that is about to execute,
//! and may block (a slow disk), rendezvous with other readers (proving
//! reads overlap), or record ordering.  `tests/miss_promotion.rs` uses
//! hooks to prove the buffer pool's promoted miss path really performs
//! device reads concurrently and coalesces same-page faults single-flight.

use crate::disk::DiskManager;
use crate::error::{Error, Result};
use crate::page::PageId;
use parking_lot::Mutex;
use std::sync::Arc;

/// Hook invoked as `(page, read_index)` immediately before a device read
/// executes (after fault-plan checks, so injected failures skip it).
/// Blocking inside the hook delays exactly that read; no internal lock is
/// held while it runs, so hooks may rendezvous across threads.
pub type ReadHook = Arc<dyn Fn(PageId, u64) + Send + Sync>;

/// The write-side twin of [`ReadHook`]: `(page, write_index)` before each
/// executing device write.  Parking a write-back here holds open the
/// window in which an evicted dirty page's disk image is stale — the
/// window the pool's `evicting` table must cover.
pub type WriteHook = Arc<dyn Fn(PageId, u64) + Send + Sync>;

/// Declarative schedule of which operations should fail.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Fail the n-th read (0-based, counted across all pages) if set.
    pub fail_read_at: Option<u64>,
    /// Fail the n-th write (0-based) if set.
    pub fail_write_at: Option<u64>,
    /// Fail every read of this specific page.
    pub poison_page_reads: Option<PageId>,
    /// Fail every write of this specific page.
    pub poison_page_writes: Option<PageId>,
}

struct Counters {
    reads: u64,
    writes: u64,
}

/// A [`DiskManager`] decorator that injects failures per a [`FaultPlan`].
pub struct FaultyDisk<D: DiskManager> {
    inner: D,
    plan: Mutex<FaultPlan>,
    counters: Mutex<Counters>,
    read_hook: Mutex<Option<ReadHook>>,
    write_hook: Mutex<Option<WriteHook>>,
}

impl<D: DiskManager> FaultyDisk<D> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        FaultyDisk {
            inner,
            plan: Mutex::new(plan),
            counters: Mutex::new(Counters { reads: 0, writes: 0 }),
            read_hook: Mutex::new(None),
            write_hook: Mutex::new(None),
        }
    }

    /// Replaces the fault schedule (e.g. to lift all faults).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock() = plan;
    }

    /// Installs (or clears) the per-read latency/ordering hook.
    pub fn set_read_hook(&self, hook: Option<ReadHook>) {
        *self.read_hook.lock() = hook;
    }

    /// Installs (or clears) the per-write latency/ordering hook.
    pub fn set_write_hook(&self, hook: Option<WriteHook>) {
        *self.write_hook.lock() = hook;
    }

    /// Total reads attempted so far (including failed ones).
    pub fn reads_attempted(&self) -> u64 {
        self.counters.lock().reads
    }

    /// Total writes attempted so far (including failed ones).
    pub fn writes_attempted(&self) -> u64 {
        self.counters.lock().writes
    }
}

impl<D: DiskManager> DiskManager for FaultyDisk<D> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let n = {
            let mut c = self.counters.lock();
            let n = c.reads;
            c.reads += 1;
            n
        };
        let plan = self.plan.lock();
        if plan.fail_read_at == Some(n) || plan.poison_page_reads == Some(id) {
            return Err(Error::InjectedFault { op: "read", page: id.raw() });
        }
        drop(plan);
        // Clone the hook out so a blocking hook never holds our lock.
        let hook = self.read_hook.lock().clone();
        if let Some(hook) = hook {
            hook(id, n);
        }
        self.inner.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let n = {
            let mut c = self.counters.lock();
            let n = c.writes;
            c.writes += 1;
            n
        };
        let plan = self.plan.lock();
        if plan.fail_write_at == Some(n) || plan.poison_page_writes == Some(id) {
            return Err(Error::InjectedFault { op: "write", page: id.raw() });
        }
        drop(plan);
        let hook = self.write_hook.lock().clone();
        if let Some(hook) = hook {
            hook(id, n);
        }
        self.inner.write_page(id, buf)
    }

    fn allocate_page(&self) -> Result<PageId> {
        self.inner.allocate_page()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufferPool, BufferPoolConfig};
    use crate::disk::MemDisk;

    #[test]
    fn scheduled_read_fault_fires_once() {
        let disk = MemDisk::new(128);
        let faulty =
            FaultyDisk::new(disk, FaultPlan { fail_read_at: Some(1), ..Default::default() });
        let pool = BufferPool::new(faulty, BufferPoolConfig::with_capacity(1));
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page(a, |_| {}).unwrap(); // read #0 ok
        let err = pool.with_page(b, |_| {}).unwrap_err(); // read #1 fails
        assert!(matches!(err, Error::InjectedFault { op: "read", .. }));
        // Read #2 succeeds again; pool is still usable.
        pool.with_page(b, |_| {}).unwrap();
    }

    #[test]
    fn read_hook_observes_each_executing_read() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let faulty = FaultyDisk::new(
            MemDisk::new(128),
            FaultPlan { fail_read_at: Some(1), ..Default::default() },
        );
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        faulty.set_read_hook(Some(Arc::new(move |_page, _n| {
            seen2.fetch_add(1, Ordering::SeqCst);
        })));
        let pool = BufferPool::new(faulty, BufferPoolConfig::with_capacity(1));
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page(a, |_| {}).unwrap(); // read #0: hook fires
        let _ = pool.with_page(b, |_| {}); // read #1 injected: hook skipped
        pool.with_page(b, |_| {}).unwrap(); // read #2: hook fires
        assert_eq!(seen.load(Ordering::SeqCst), 2, "hook runs only for executing reads");
    }

    #[test]
    fn poisoned_page_write_blocks_eviction() {
        let disk = MemDisk::new(128);
        let faulty = FaultyDisk::new(disk, FaultPlan::default());
        let pool = BufferPool::new(faulty, BufferPoolConfig::with_capacity(1));
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |d| d[0] = 1).unwrap();
        // Flushing works while no fault is scheduled.
        pool.flush_all().unwrap();
        pool.with_page_mut(a, |d| d[0] = 2).unwrap();
        // Poison writes of `a`: evicting it must now fail loudly, not silently.
        // (We cannot reach the inner FaultyDisk through the pool, so this
        // test constructs the schedule up front instead.)
        let disk2 = MemDisk::new(128);
        let faulty2 = FaultyDisk::new(
            disk2,
            FaultPlan { poison_page_writes: Some(PageId(0)), ..Default::default() },
        );
        let pool2 = BufferPool::new(faulty2, BufferPoolConfig::with_capacity(1));
        let p0 = pool2.allocate_page().unwrap();
        let p1 = pool2.allocate_page().unwrap();
        pool2.with_page_mut(p0, |d| d[0] = 9).unwrap();
        let err = pool2.with_page(p1, |_| {}).unwrap_err();
        assert!(matches!(err, Error::InjectedFault { op: "write", .. }));
        let _ = b;
    }
}
