//! Fault-injecting disk wrapper for failure testing.
//!
//! Wraps any [`DiskManager`] and fails selected operations according to a
//! [`FaultPlan`].  The integration tests use this to verify that I/O errors
//! propagate cleanly through the B+-tree and relational layers (no panics,
//! no partially-applied page writes observed after the failure is lifted).
//!
//! Beyond failures, the wrapper injects **latency and ordering**: a
//! [`ReadHook`] runs before every device read that is about to execute,
//! and may block (a slow disk), rendezvous with other readers (proving
//! reads overlap), or record ordering.  `tests/miss_promotion.rs` uses
//! hooks to prove the buffer pool's promoted miss path really performs
//! device reads concurrently and coalesces same-page faults single-flight.
//!
//! # Crash simulation
//!
//! For durability testing the wrapper also models **power loss**.  Arming a
//! [`CrashPlan`] on the shared [`FaultClock`] switches the disk into
//! *volatile-cache* mode: writes are buffered in an overlay (visible to
//! subsequent reads, like an on-device write cache) and only reach the
//! underlying disk on [`DiskManager::sync`].  When the globally-counted
//! write index hits `crash_at_write`, the machine "dies":
//!
//! * unsynced overlay writes survive only if their per-write coin
//!   (seeded by `persist_seed`) came up heads — a disk may or may not have
//!   gotten around to destaging them;
//! * the dying write itself persists at most a **torn prefix** of
//!   `torn_sectors × sector_bytes` bytes (partial-sector write);
//! * every later operation fails with [`Error::Crashed`] until the caller
//!   "reboots" by reopening the inner device.
//!
//! Several devices (e.g. the data disk and the WAL disk) can share one
//! `FaultClock`, so a single global write index enumerates every crash
//! point of a workload across all devices — the basis of the
//! kill-anywhere suite in `tests/crash_recovery.rs`.  That enumeration is
//! *thread-blind by design*: the WAL's background flusher thread and the
//! segment-rollover path (header + anchor writes) issue ordinary device
//! writes on the same clock, so sweeping `crash_at_write` over a workload
//! automatically lands kills **inside flusher drains and mid-rollover** —
//! no separate flusher-aware plumbing is needed, the flusher-enabled
//! sweeps in `tests/crash_recovery.rs` just run a `FlushPolicy::Background`
//! pool against the same advancing clock.
//!
//! Page allocation is modelled as immediately durable (it only extends the
//! device; a crash can at worst leak zeroed pages, never tear data).

use crate::disk::DiskManager;
use crate::error::{Error, Result};
use crate::page::PageId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Hook invoked as `(page, read_index)` immediately before a device read
/// executes (after fault-plan checks, so injected failures skip it).
/// Blocking inside the hook delays exactly that read; no internal lock is
/// held while it runs, so hooks may rendezvous across threads.
pub type ReadHook = Arc<dyn Fn(PageId, u64) + Send + Sync>;

/// The write-side twin of [`ReadHook`]: `(page, write_index)` before each
/// executing device write.  Parking a write-back here holds open the
/// window in which an evicted dirty page's disk image is stale — the
/// window the pool's `evicting` table must cover.
pub type WriteHook = Arc<dyn Fn(PageId, u64) + Send + Sync>;

/// Sync-side hook: invoked with the 0-based sync index before each
/// executing [`DiskManager::sync`].  Blocking here holds a group-commit
/// window open, which is how `tests/group_commit.rs` forces concurrent
/// committers to pile onto one fsync.
pub type SyncHook = Arc<dyn Fn(u64) + Send + Sync>;

/// Declarative schedule of which operations should fail.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Fail the n-th read (0-based, counted across all pages) if set.
    pub fail_read_at: Option<u64>,
    /// Fail the n-th write (0-based) if set.
    pub fail_write_at: Option<u64>,
    /// Fail the n-th sync (0-based) if set.
    pub fail_sync_at: Option<u64>,
    /// Fail every read of this specific page.
    pub poison_page_reads: Option<PageId>,
    /// Fail every write of this specific page.
    pub poison_page_writes: Option<PageId>,
}

/// When and how the simulated machine dies.  Armed via
/// [`FaultClock::arm_crash`]; indices count on the owning clock, across
/// every device sharing it.
#[derive(Debug, Clone)]
pub struct CrashPlan {
    /// Die when the global write index reaches this value.  `None` leaves
    /// the clock armed (writes buffer volatile) until [`FaultClock::crash_now`].
    pub crash_at_write: Option<u64>,
    /// Die when the global sync index reaches this value — the power cut
    /// lands on a barrier instead of a write (e.g. inside a checkpoint's
    /// flush-then-anchor window).  The dying sync destages nothing: only
    /// coin-surviving buffered writes persist, exactly as for a crash
    /// between syncs.
    pub crash_at_sync: Option<u64>,
    /// How many leading sectors of the dying write persist (torn write).
    /// `0` means the dying write leaves no trace at all.
    pub torn_sectors: usize,
    /// Sector granularity of torn writes, in bytes.
    pub sector_bytes: usize,
    /// Seed of the per-write coin deciding which *unsynced* buffered
    /// writes happen to have been destaged before the power cut.
    pub persist_seed: u64,
}

impl Default for CrashPlan {
    fn default() -> Self {
        CrashPlan {
            crash_at_write: None,
            crash_at_sync: None,
            torn_sectors: 0,
            sector_bytes: 512,
            persist_seed: 0,
        }
    }
}

/// Deterministic coin: does unsynced write `n` survive the crash?
fn persist_coin(seed: u64, n: u64) -> bool {
    // splitmix64 finalizer over (seed, n).
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    z & 1 == 0
}

struct ClockState {
    reads: u64,
    writes: u64,
    syncs: u64,
    crash: Option<CrashPlan>,
    crashed: bool,
}

/// Shared operation counter + crash schedule.  One clock may be shared by
/// several [`FaultyDisk`]s so crash points are enumerated over a single
/// global write sequence.
pub struct FaultClock {
    state: Mutex<ClockState>,
}

/// What a counted write should do, as decided by the clock.
enum WriteVerdict {
    /// No crash plan armed: write through to the inner device.
    PassThrough,
    /// Crash plan armed, not the crash point: buffer in the overlay.
    Buffer { survives: bool },
    /// This write IS the crash point: persist survivors + torn prefix, die.
    CrashNow { torn_sectors: usize, sector_bytes: usize },
    /// The machine already died.
    Dead,
}

impl FaultClock {
    /// A fresh clock with no crash scheduled.
    pub fn new() -> Arc<Self> {
        Arc::new(FaultClock {
            state: Mutex::new(ClockState {
                reads: 0,
                writes: 0,
                syncs: 0,
                crash: None,
                crashed: false,
            }),
        })
    }

    /// Arms (or replaces) the crash schedule.  From now on, writes on
    /// every device sharing this clock are volatile until synced.
    pub fn arm_crash(&self, plan: CrashPlan) {
        let mut s = self.state.lock();
        s.crash = Some(plan);
    }

    /// Cuts the power right now, regardless of `crash_at_write`.
    /// Devices sharing the clock settle their overlays on their next
    /// operation or via [`FaultyDisk::settle_crash`].
    pub fn crash_now(&self) {
        self.state.lock().crashed = true;
    }

    /// Has the simulated machine died?
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Global writes attempted so far across all sharing devices.
    pub fn writes(&self) -> u64 {
        self.state.lock().writes
    }

    /// Global syncs attempted so far across all sharing devices.
    pub fn syncs(&self) -> u64 {
        self.state.lock().syncs
    }

    fn on_read(&self) -> (u64, bool) {
        let mut s = self.state.lock();
        let n = s.reads;
        s.reads += 1;
        (n, s.crashed)
    }

    fn on_write(&self) -> (u64, WriteVerdict) {
        let mut s = self.state.lock();
        let n = s.writes;
        s.writes += 1;
        if s.crashed {
            return (n, WriteVerdict::Dead);
        }
        match &s.crash {
            None => (n, WriteVerdict::PassThrough),
            Some(p) => {
                if p.crash_at_write == Some(n) {
                    let v = WriteVerdict::CrashNow {
                        torn_sectors: p.torn_sectors,
                        sector_bytes: p.sector_bytes,
                    };
                    s.crashed = true;
                    (n, v)
                } else {
                    (n, WriteVerdict::Buffer { survives: persist_coin(p.persist_seed, n) })
                }
            }
        }
    }

    /// Returns `(sync_index, armed, crashed)` — marking the clock dead
    /// first when this sync is the scheduled crash point.
    fn on_sync(&self) -> (u64, bool, bool) {
        let mut s = self.state.lock();
        let n = s.syncs;
        s.syncs += 1;
        if !s.crashed {
            if let Some(p) = &s.crash {
                if p.crash_at_sync == Some(n) {
                    s.crashed = true;
                }
            }
        }
        (n, s.crash.is_some(), s.crashed)
    }

    fn armed(&self) -> bool {
        self.state.lock().crash.is_some()
    }
}

struct OverlayWrite {
    page: PageId,
    data: Box<[u8]>,
    survives: bool,
}

#[derive(Default)]
struct Overlay {
    /// Buffered writes in device order.
    writes: Vec<OverlayWrite>,
    /// Latest overlay entry per page, for read-your-writes.
    latest: HashMap<PageId, usize>,
}

/// A [`DiskManager`] decorator that injects failures per a [`FaultPlan`]
/// and simulates crashes per the shared [`FaultClock`]'s [`CrashPlan`].
pub struct FaultyDisk<D: DiskManager> {
    inner: D,
    plan: Mutex<FaultPlan>,
    clock: Arc<FaultClock>,
    overlay: Mutex<Overlay>,
    read_hook: Mutex<Option<ReadHook>>,
    write_hook: Mutex<Option<WriteHook>>,
    sync_hook: Mutex<Option<SyncHook>>,
}

impl<D: DiskManager> FaultyDisk<D> {
    /// Wraps `inner` with the given fault schedule and a private clock.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        Self::with_clock(inner, plan, FaultClock::new())
    }

    /// Wraps `inner` sharing an existing clock, so several devices count
    /// (and crash) on one global operation sequence.
    pub fn with_clock(inner: D, plan: FaultPlan, clock: Arc<FaultClock>) -> Self {
        FaultyDisk {
            inner,
            plan: Mutex::new(plan),
            clock,
            overlay: Mutex::new(Overlay::default()),
            read_hook: Mutex::new(None),
            write_hook: Mutex::new(None),
            sync_hook: Mutex::new(None),
        }
    }

    /// The clock this device counts on.
    pub fn clock(&self) -> &Arc<FaultClock> {
        &self.clock
    }

    /// Replaces the fault schedule (e.g. to lift all faults).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock() = plan;
    }

    /// Installs (or clears) the per-read latency/ordering hook.
    pub fn set_read_hook(&self, hook: Option<ReadHook>) {
        *self.read_hook.lock() = hook;
    }

    /// Installs (or clears) the per-write latency/ordering hook.
    pub fn set_write_hook(&self, hook: Option<WriteHook>) {
        *self.write_hook.lock() = hook;
    }

    /// Installs (or clears) the per-sync hook.
    pub fn set_sync_hook(&self, hook: Option<SyncHook>) {
        *self.sync_hook.lock() = hook;
    }

    /// Total reads attempted so far (including failed ones).
    pub fn reads_attempted(&self) -> u64 {
        self.clock.state.lock().reads
    }

    /// Total writes attempted so far (including failed ones).
    pub fn writes_attempted(&self) -> u64 {
        self.clock.state.lock().writes
    }

    /// Total syncs attempted so far (including failed ones).
    pub fn syncs_attempted(&self) -> u64 {
        self.clock.state.lock().syncs
    }

    /// After a crash, flushes the coin-surviving buffered writes down to
    /// the inner device and discards the rest.  Idempotent; also invoked
    /// implicitly by the first post-crash operation, so dropping a pool
    /// whose destructor attempts a flush settles the device too.
    pub fn settle_crash(&self) {
        if self.clock.crashed() {
            let mut ov = self.overlay.lock();
            self.apply_overlay(&mut ov, /*survivors_only=*/ true);
        }
    }

    /// Applies buffered writes to the inner device in order and clears the
    /// overlay.  `survivors_only` models a power cut; otherwise a sync.
    fn apply_overlay(&self, ov: &mut Overlay, survivors_only: bool) {
        for w in ov.writes.drain(..) {
            if survivors_only && !w.survives {
                continue;
            }
            // Infallible by construction: the page was validated when the
            // buffered write was accepted.
            let _ = self.inner.write_page(w.page, &w.data);
        }
        ov.latest.clear();
    }

    /// Settles then reports death: shared post-crash exit path.
    fn die<T>(&self) -> Result<T> {
        let mut ov = self.overlay.lock();
        self.apply_overlay(&mut ov, true);
        Err(Error::Crashed)
    }
}

impl<D: DiskManager> DiskManager for FaultyDisk<D> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let (n, crashed) = self.clock.on_read();
        if crashed {
            return self.die();
        }
        let plan = self.plan.lock();
        if plan.fail_read_at == Some(n) || plan.poison_page_reads == Some(id) {
            return Err(Error::InjectedFault { op: "read", page: id.raw() });
        }
        drop(plan);
        // Clone the hook out so a blocking hook never holds our lock.
        let hook = self.read_hook.lock().clone();
        if let Some(hook) = hook {
            hook(id, n);
        }
        // Read-your-writes against the volatile overlay.
        if self.clock.armed() {
            let ov = self.overlay.lock();
            if let Some(&idx) = ov.latest.get(&id) {
                let data = &ov.writes[idx].data;
                if data.len() != buf.len() {
                    return Err(Error::InvalidArgument(format!(
                        "read buffer is {} bytes, page is {}",
                        buf.len(),
                        data.len()
                    )));
                }
                buf.copy_from_slice(data);
                return Ok(());
            }
        }
        self.inner.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let (n, verdict) = self.clock.on_write();
        if matches!(verdict, WriteVerdict::Dead) {
            return self.die();
        }
        let plan = self.plan.lock();
        if plan.fail_write_at == Some(n) || plan.poison_page_writes == Some(id) {
            return Err(Error::InjectedFault { op: "write", page: id.raw() });
        }
        drop(plan);
        let hook = self.write_hook.lock().clone();
        if let Some(hook) = hook {
            hook(id, n);
        }
        match verdict {
            WriteVerdict::Dead => unreachable!("handled above"),
            WriteVerdict::PassThrough => self.inner.write_page(id, buf),
            WriteVerdict::Buffer { survives } => {
                // Validate bounds now so buffered writes can't fail later.
                if id.raw() >= self.inner.num_pages() {
                    return Err(Error::PageOutOfBounds {
                        page: id.raw(),
                        num_pages: self.inner.num_pages(),
                    });
                }
                if buf.len() != self.inner.page_size() {
                    return Err(Error::InvalidArgument(format!(
                        "write buffer is {} bytes, page is {}",
                        buf.len(),
                        self.inner.page_size()
                    )));
                }
                let mut ov = self.overlay.lock();
                let idx = ov.writes.len();
                ov.writes.push(OverlayWrite { page: id, data: buf.into(), survives });
                ov.latest.insert(id, idx);
                Ok(())
            }
            WriteVerdict::CrashNow { torn_sectors, sector_bytes } => {
                let mut ov = self.overlay.lock();
                // Destage the coin-surviving cached writes first, then the
                // torn prefix of the dying write on top of whatever the
                // page's durable image now is.
                self.apply_overlay(&mut ov, true);
                let torn = (torn_sectors * sector_bytes).min(buf.len());
                if torn > 0 && id.raw() < self.inner.num_pages() {
                    let mut cur = vec![0u8; self.inner.page_size()];
                    if self.inner.read_page(id, &mut cur).is_ok() && torn <= cur.len() {
                        cur[..torn].copy_from_slice(&buf[..torn]);
                        let _ = self.inner.write_page(id, &cur);
                    }
                }
                Err(Error::Crashed)
            }
        }
    }

    fn allocate_page(&self) -> Result<PageId> {
        // Allocation is modelled durable-immediate (see module docs).
        if self.clock.crashed() {
            return self.die();
        }
        self.inner.allocate_page()
    }

    fn sync(&self) -> Result<()> {
        let (n, armed, crashed) = self.clock.on_sync();
        if crashed {
            return self.die();
        }
        let plan = self.plan.lock();
        if plan.fail_sync_at == Some(n) {
            return Err(Error::InjectedFault { op: "sync", page: u64::MAX });
        }
        drop(plan);
        let hook = self.sync_hook.lock().clone();
        if let Some(hook) = hook {
            hook(n);
        }
        // A hook may have been used to park this sync while the crash
        // fired on another thread; re-check before destaging everything.
        if self.clock.crashed() {
            return self.die();
        }
        if armed {
            let mut ov = self.overlay.lock();
            self.apply_overlay(&mut ov, false);
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufferPool, BufferPoolConfig};
    use crate::disk::MemDisk;

    #[test]
    fn scheduled_read_fault_fires_once() {
        let disk = MemDisk::new(128);
        let faulty =
            FaultyDisk::new(disk, FaultPlan { fail_read_at: Some(1), ..Default::default() });
        let pool = BufferPool::new(faulty, BufferPoolConfig::with_capacity(1));
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page(a, |_| {}).unwrap(); // read #0 ok
        let err = pool.with_page(b, |_| {}).unwrap_err(); // read #1 fails
        assert!(matches!(err, Error::InjectedFault { op: "read", .. }));
        // Read #2 succeeds again; pool is still usable.
        pool.with_page(b, |_| {}).unwrap();
    }

    #[test]
    fn read_hook_observes_each_executing_read() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let faulty = FaultyDisk::new(
            MemDisk::new(128),
            FaultPlan { fail_read_at: Some(1), ..Default::default() },
        );
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        faulty.set_read_hook(Some(Arc::new(move |_page, _n| {
            seen2.fetch_add(1, Ordering::SeqCst);
        })));
        let pool = BufferPool::new(faulty, BufferPoolConfig::with_capacity(1));
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page(a, |_| {}).unwrap(); // read #0: hook fires
        let _ = pool.with_page(b, |_| {}); // read #1 injected: hook skipped
        pool.with_page(b, |_| {}).unwrap(); // read #2: hook fires
        assert_eq!(seen.load(Ordering::SeqCst), 2, "hook runs only for executing reads");
    }

    #[test]
    fn poisoned_page_write_blocks_eviction() {
        let disk = MemDisk::new(128);
        let faulty = FaultyDisk::new(disk, FaultPlan::default());
        let pool = BufferPool::new(faulty, BufferPoolConfig::with_capacity(1));
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |d| d[0] = 1).unwrap();
        // Flushing works while no fault is scheduled.
        pool.flush_all().unwrap();
        pool.with_page_mut(a, |d| d[0] = 2).unwrap();
        // Poison writes of `a`: evicting it must now fail loudly, not silently.
        // (We cannot reach the inner FaultyDisk through the pool, so this
        // test constructs the schedule up front instead.)
        let disk2 = MemDisk::new(128);
        let faulty2 = FaultyDisk::new(
            disk2,
            FaultPlan { poison_page_writes: Some(PageId(0)), ..Default::default() },
        );
        let pool2 = BufferPool::new(faulty2, BufferPoolConfig::with_capacity(1));
        let p0 = pool2.allocate_page().unwrap();
        let p1 = pool2.allocate_page().unwrap();
        pool2.with_page_mut(p0, |d| d[0] = 9).unwrap();
        let err = pool2.with_page(p1, |_| {}).unwrap_err();
        assert!(matches!(err, Error::InjectedFault { op: "write", .. }));
        let _ = b;
    }

    #[test]
    fn armed_clock_buffers_writes_until_sync() {
        let mem = Arc::new(MemDisk::new(128));
        let faulty = FaultyDisk::new(Arc::clone(&mem), FaultPlan::default());
        faulty.clock().arm_crash(CrashPlan::default());
        let p = faulty.allocate_page().unwrap();
        faulty.write_page(p, &[7u8; 128]).unwrap();
        // The inner device still sees zeros; the wrapper sees the write.
        let mut raw = [0u8; 128];
        mem.read_page(p, &mut raw).unwrap();
        assert_eq!(raw, [0u8; 128], "unsynced write must not reach the device");
        let mut via = [0u8; 128];
        faulty.read_page(p, &mut via).unwrap();
        assert_eq!(via, [7u8; 128], "read-your-writes through the overlay");
        faulty.sync().unwrap();
        mem.read_page(p, &mut raw).unwrap();
        assert_eq!(raw, [7u8; 128], "sync destages the overlay");
    }

    #[test]
    fn crash_point_drops_unsynced_and_tears_the_dying_write() {
        let mem = Arc::new(MemDisk::new(128));
        let faulty = FaultyDisk::new(Arc::clone(&mem), FaultPlan::default());
        let a = faulty.allocate_page().unwrap();
        let b = faulty.allocate_page().unwrap();
        faulty.write_page(a, &[1u8; 128]).unwrap();
        faulty.sync().unwrap(); // durable
        faulty.clock().arm_crash(CrashPlan {
            crash_at_write: Some(2), // writes #1 (buffered) then #2 (dies)
            torn_sectors: 1,
            sector_bytes: 32,
            persist_seed: 42,
            // write #1's coin decides whether it survives; either way the
            // recovered state must be one of the two legal outcomes.
            ..Default::default()
        });
        faulty.write_page(b, &[2u8; 128]).unwrap(); // write #1: volatile
        let err = faulty.write_page(a, &[3u8; 128]).unwrap_err(); // write #2: boom
        assert!(matches!(err, Error::Crashed));
        // Post-crash: every op fails.
        assert!(matches!(faulty.sync().unwrap_err(), Error::Crashed));
        let mut buf = [0u8; 128];
        assert!(matches!(faulty.read_page(a, &mut buf).unwrap_err(), Error::Crashed));
        // The dying write left exactly a 32-byte torn prefix over the old
        // durable image of `a`.
        mem.read_page(a, &mut buf).unwrap();
        assert_eq!(&buf[..32], &[3u8; 32][..]);
        assert_eq!(&buf[32..], &[1u8; 96][..]);
        // Write #1 either fully survived or fully vanished — never tore.
        mem.read_page(b, &mut buf).unwrap();
        assert!(buf == [2u8; 128] || buf == [0u8; 128]);
    }

    #[test]
    fn crash_at_sync_dies_before_destaging() {
        let mem = Arc::new(MemDisk::new(128));
        let faulty = FaultyDisk::new(Arc::clone(&mem), FaultPlan::default());
        let p = faulty.allocate_page().unwrap();
        faulty.clock().arm_crash(CrashPlan {
            crash_at_sync: Some(0),
            persist_seed: 7,
            ..Default::default()
        });
        faulty.write_page(p, &[9u8; 128]).unwrap(); // write #0: volatile
        let err = faulty.sync().unwrap_err(); // sync #0: power cut on the barrier
        assert!(matches!(err, Error::Crashed));
        // The barrier never completed: the buffered write either
        // coin-survived in full or vanished — it was not destaged by the
        // dying sync.
        let mut raw = [0u8; 128];
        mem.read_page(p, &mut raw).unwrap();
        assert!(raw == [9u8; 128] || raw == [0u8; 128]);
        assert!(matches!(faulty.sync().unwrap_err(), Error::Crashed));
    }

    #[test]
    fn shared_clock_counts_writes_across_devices() {
        let clock = FaultClock::new();
        let d1 = FaultyDisk::with_clock(MemDisk::new(64), FaultPlan::default(), Arc::clone(&clock));
        let d2 = FaultyDisk::with_clock(MemDisk::new(64), FaultPlan::default(), Arc::clone(&clock));
        let p1 = d1.allocate_page().unwrap();
        let p2 = d2.allocate_page().unwrap();
        d1.write_page(p1, &[0u8; 64]).unwrap();
        d2.write_page(p2, &[0u8; 64]).unwrap();
        d1.write_page(p1, &[1u8; 64]).unwrap();
        assert_eq!(clock.writes(), 3, "one global write index across devices");
        clock.crash_now();
        assert!(matches!(d1.write_page(p1, &[2u8; 64]).unwrap_err(), Error::Crashed));
        assert!(matches!(d2.sync().unwrap_err(), Error::Crashed));
    }

    #[test]
    fn scheduled_sync_fault_fires() {
        let faulty = FaultyDisk::new(
            MemDisk::new(64),
            FaultPlan { fail_sync_at: Some(0), ..Default::default() },
        );
        let err = faulty.sync().unwrap_err();
        assert!(matches!(err, Error::InjectedFault { op: "sync", .. }));
        faulty.sync().unwrap(); // one-shot
        assert_eq!(faulty.syncs_attempted(), 2);
    }
}
