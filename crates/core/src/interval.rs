//! Closed integer intervals.

use ri_pagestore::Error;

/// A closed interval `[lower, upper]` with `lower <= upper`.
///
/// Points are degenerate intervals with `lower == upper`, exactly as in the
/// paper (Section 3.3: "Points p are represented by degenerate intervals
/// (p, p)").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lower: i64,
    /// Inclusive upper bound.
    pub upper: i64,
}

impl Interval {
    /// Creates `[lower, upper]`, validating `lower <= upper`.
    pub fn new(lower: i64, upper: i64) -> Result<Interval, Error> {
        if lower > upper {
            return Err(Error::InvalidArgument(format!(
                "invalid interval: lower {lower} > upper {upper}"
            )));
        }
        Ok(Interval { lower, upper })
    }

    /// Creates a degenerate point interval `[p, p]`.
    pub fn point(p: i64) -> Interval {
        Interval { lower: p, upper: p }
    }

    /// Interval length `upper - lower` (0 for points).
    pub fn length(&self) -> i64 {
        self.upper - self.lower
    }

    /// Closed-interval intersection test.
    #[inline]
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lower <= other.upper && other.lower <= self.upper
    }

    /// Containment test: does `self` contain `p`?
    #[inline]
    pub fn contains_point(&self, p: i64) -> bool {
        self.lower <= p && p <= self.upper
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lower, self.upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_order() {
        assert!(Interval::new(3, 2).is_err());
        assert!(Interval::new(2, 2).is_ok());
        assert_eq!(Interval::point(5), Interval::new(5, 5).unwrap());
    }

    #[test]
    fn intersection_semantics_are_closed() {
        let a = Interval::new(1, 5).unwrap();
        assert!(a.intersects(&Interval::new(5, 9).unwrap()), "shared endpoint intersects");
        assert!(a.intersects(&Interval::new(0, 1).unwrap()));
        assert!(!a.intersects(&Interval::new(6, 9).unwrap()));
        assert!(a.intersects(&Interval::point(3)));
        assert!(!a.intersects(&Interval::point(0)));
    }

    #[test]
    fn length_and_membership() {
        let a = Interval::new(-3, 4).unwrap();
        assert_eq!(a.length(), 7);
        assert!(a.contains_point(-3));
        assert!(a.contains_point(4));
        assert!(!a.contains_point(5));
        assert_eq!(Interval::point(9).length(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Interval::new(1, 2).unwrap().to_string(), "[1, 2]");
    }
}
