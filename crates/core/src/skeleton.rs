//! The Skeleton Index extension (paper Section 7).
//!
//! The conclusion singles out one extension as promising: "the application
//! of the Skeleton Index technique [KS 91] to the RI-tree, because a
//! partial materialization of the primary structure can be adapted to the
//! expected data distribution".
//!
//! This module materializes exactly the useful part of the primary
//! structure: a *node directory* — one relational row per **non-empty**
//! backbone node, maintained incrementally.  A query traversal first scans
//! the directory once over the node span it would visit and drops every
//! transient `leftNodes`/`rightNodes` entry whose node holds no intervals.
//! For clustered or sparse data distributions, most of the O(h) candidate
//! nodes on the descent paths are empty, and each dropped node saves one
//! index probe of O(log_b n) I/Os — while the directory itself is tiny
//! (16 bytes per distinct non-empty node) and stays cached.
//!
//! The directory is an ordinary table + index on the same engine, so its
//! maintenance and probe costs are measured like everything else.

use crate::tree::RiTree;
use ri_pagestore::Result;
use ri_relstore::{Database, IndexDef, RowId, Table, TableDef};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Persistent directory of non-empty backbone nodes.
pub struct SkeletonDirectory {
    table_name: String,
    index_name: String,
    table: Table,
}

impl SkeletonDirectory {
    /// Creates the directory schema for the RI-tree called `name`.
    pub fn create(db: Arc<Database>, name: &str) -> Result<SkeletonDirectory> {
        let table_name = format!("RI_{name}_SKEL");
        let index_name = format!("RI_{name}_SKEL_IDX");
        db.create_table(TableDef { name: table_name.clone(), columns: vec!["node".into()] })?;
        db.create_index(&table_name, IndexDef { name: index_name.clone(), key_cols: vec![0] })?;
        let table = db.table(&table_name)?;
        Ok(SkeletonDirectory { table_name, index_name, table })
    }

    /// Re-opens an existing directory.
    pub fn open(db: Arc<Database>, name: &str) -> Result<SkeletonDirectory> {
        let table_name = format!("RI_{name}_SKEL");
        let index_name = format!("RI_{name}_SKEL_IDX");
        let table = db.table(&table_name)?;
        table.index(&index_name)?;
        Ok(SkeletonDirectory { table_name, index_name, table })
    }

    /// The directory's table name.
    pub fn table_name(&self) -> &str {
        &self.table_name
    }

    /// Registers `node` as non-empty (idempotent).
    pub fn add(&self, node: i64) -> Result<()> {
        if !self.contains(node)? {
            self.table.insert(&[node])?;
        }
        Ok(())
    }

    /// Removes `node` from the directory (after its last interval left).
    pub fn remove(&self, node: i64) -> Result<()> {
        let index = self.table.index(&self.index_name)?;
        let rids: Vec<RowId> = index
            .scan_range(&[node], &[node])
            .map(|e| e.map(|e| RowId::from_raw(e.payload)))
            .collect::<Result<_>>()?;
        for rid in rids {
            self.table.delete(rid)?;
        }
        Ok(())
    }

    /// Membership probe.
    pub fn contains(&self, node: i64) -> Result<bool> {
        let index = self.table.index(&self.index_name)?;
        Ok(index.scan_range(&[node], &[node]).next().is_some())
    }

    /// All non-empty nodes within `[lo, hi]`, via a single range scan.
    pub fn nonempty_in(&self, lo: i64, hi: i64) -> Result<BTreeSet<i64>> {
        let index = self.table.index(&self.index_name)?;
        index.scan_range(&[lo], &[hi]).map(|e| e.map(|e| e.key.col(0))).collect()
    }

    /// Number of materialized (non-empty) nodes.
    pub fn len(&self) -> Result<u64> {
        self.table.row_count()
    }

    /// Whether no node is materialized.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

impl RiTree {
    /// Filters transient query-node lists through the skeleton directory:
    /// returns the (left single nodes, right nodes) that are actually
    /// non-empty.  The `(min, max)` range pair of the left list is passed
    /// through untouched by the caller — it is one scan regardless.
    pub(crate) fn skeleton_filter(
        dir: &SkeletonDirectory,
        left_single: Vec<i64>,
        right: Vec<i64>,
    ) -> Result<(Vec<i64>, Vec<i64>)> {
        let lo = left_single.iter().chain(right.iter()).copied().min().unwrap_or(0);
        let hi = left_single.iter().chain(right.iter()).copied().max().unwrap_or(-1);
        if lo > hi {
            return Ok((left_single, right));
        }
        let nonempty = dir.nonempty_in(lo, hi)?;
        Ok((
            left_single.into_iter().filter(|w| nonempty.contains(w)).collect(),
            right.into_iter().filter(|w| nonempty.contains(w)).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk, DEFAULT_PAGE_SIZE};

    fn dir() -> SkeletonDirectory {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::with_capacity(50),
        ));
        let db = Arc::new(Database::create(pool).unwrap());
        SkeletonDirectory::create(db, "t").unwrap()
    }

    #[test]
    fn add_is_idempotent() {
        let d = dir();
        d.add(5).unwrap();
        d.add(5).unwrap();
        d.add(-3).unwrap();
        assert_eq!(d.len().unwrap(), 2);
        assert!(d.contains(5).unwrap());
        assert!(d.contains(-3).unwrap());
        assert!(!d.contains(4).unwrap());
    }

    #[test]
    fn remove_clears_membership() {
        let d = dir();
        d.add(7).unwrap();
        d.remove(7).unwrap();
        assert!(!d.contains(7).unwrap());
        assert!(d.is_empty().unwrap());
        d.remove(7).unwrap(); // removing absent nodes is harmless
    }

    #[test]
    fn range_scan_returns_sorted_set() {
        let d = dir();
        for n in [10, -5, 30, 20, 0] {
            d.add(n).unwrap();
        }
        let s = d.nonempty_in(-5, 20).unwrap();
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![-5, 0, 10, 20]);
    }
}
