//! The thirteen topological (Allen) interval relations — Section 4.5.
//!
//! "In addition to the intersection query predicate, there are 13 more
//! fine-grained temporal relationships between intervals"; the RI-tree
//! supports them all.  Each relation is answered by a *candidate query*
//! against the relational indexes (a stabbing or intersection query chosen
//! so that its result is a superset of the relation's result) followed by
//! an exact predicate on the candidate bounds.  Stab-based relations touch
//! only the intervals containing one query endpoint, so they inherit the
//! intersection query's output-sensitive cost; the inherently large
//! *before*/*after* relations scan the matching prefix/suffix of the data
//! space, which is the best any method can do for them.

use crate::interval::Interval;
use crate::tree::RiTree;
use ri_pagestore::Result;

/// Allen's interval relations: `I rel Q` for a stored interval `I` and the
/// query interval `Q`.
///
/// Definitions follow Allen (1983) on closed integer intervals; *meets* is
/// endpoint equality `I.upper == Q.lower`, as in the paper's temporal
/// context where adjacent validity periods share a boundary instant.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AllenRelation {
    /// `I.upper < Q.lower`: I lies strictly before Q.
    Before,
    /// `I.upper == Q.lower`: I ends exactly where Q begins.
    Meets,
    /// `I.lower < Q.lower && Q.lower < I.upper && I.upper < Q.upper`.
    Overlaps,
    /// `I.lower == Q.lower && I.upper < Q.upper`.
    Starts,
    /// `Q.lower < I.lower && I.upper < Q.upper`: I strictly inside Q.
    During,
    /// `I.upper == Q.upper && Q.lower < I.lower`.
    Finishes,
    /// Identical bounds.
    Equals,
    /// `I.upper == Q.upper && I.lower < Q.lower` (inverse of finishes).
    FinishedBy,
    /// `I.lower < Q.lower && Q.upper < I.upper`: I strictly contains Q.
    Contains,
    /// `I.lower == Q.lower && Q.upper < I.upper` (inverse of starts).
    StartedBy,
    /// `Q.lower < I.lower && I.lower < Q.upper && Q.upper < I.upper`.
    OverlappedBy,
    /// `I.lower == Q.upper`: I begins exactly where Q ends.
    MetBy,
    /// `Q.upper < I.lower`: I lies strictly after Q.
    After,
}

impl AllenRelation {
    /// All thirteen relations.
    pub const ALL: [AllenRelation; 13] = [
        AllenRelation::Before,
        AllenRelation::Meets,
        AllenRelation::Overlaps,
        AllenRelation::Starts,
        AllenRelation::During,
        AllenRelation::Finishes,
        AllenRelation::Equals,
        AllenRelation::FinishedBy,
        AllenRelation::Contains,
        AllenRelation::StartedBy,
        AllenRelation::OverlappedBy,
        AllenRelation::MetBy,
        AllenRelation::After,
    ];

    /// Exact predicate: does stored interval `i` stand in `self` to `q`?
    pub fn matches(&self, i: &Interval, q: &Interval) -> bool {
        match self {
            AllenRelation::Before => i.upper < q.lower,
            AllenRelation::Meets => i.upper == q.lower,
            AllenRelation::Overlaps => i.lower < q.lower && q.lower < i.upper && i.upper < q.upper,
            AllenRelation::Starts => i.lower == q.lower && i.upper < q.upper,
            AllenRelation::During => q.lower < i.lower && i.upper < q.upper,
            AllenRelation::Finishes => i.upper == q.upper && q.lower < i.lower,
            AllenRelation::Equals => i.lower == q.lower && i.upper == q.upper,
            AllenRelation::FinishedBy => i.upper == q.upper && i.lower < q.lower,
            AllenRelation::Contains => i.lower < q.lower && q.upper < i.upper,
            AllenRelation::StartedBy => i.lower == q.lower && q.upper < i.upper,
            AllenRelation::OverlappedBy => {
                q.lower < i.lower && i.lower < q.upper && q.upper < i.upper
            }
            AllenRelation::MetBy => i.lower == q.upper,
            AllenRelation::After => q.upper < i.lower,
        }
    }

    /// The inverse relation: `I rel Q ⇔ Q rel.inverse() I`.
    pub fn inverse(&self) -> AllenRelation {
        match self {
            AllenRelation::Before => AllenRelation::After,
            AllenRelation::Meets => AllenRelation::MetBy,
            AllenRelation::Overlaps => AllenRelation::OverlappedBy,
            AllenRelation::Starts => AllenRelation::StartedBy,
            AllenRelation::During => AllenRelation::Contains,
            AllenRelation::Finishes => AllenRelation::FinishedBy,
            AllenRelation::Equals => AllenRelation::Equals,
            AllenRelation::FinishedBy => AllenRelation::Finishes,
            AllenRelation::Contains => AllenRelation::During,
            AllenRelation::StartedBy => AllenRelation::Starts,
            AllenRelation::OverlappedBy => AllenRelation::Overlaps,
            AllenRelation::MetBy => AllenRelation::Meets,
            AllenRelation::After => AllenRelation::Before,
        }
    }

    /// Whether the candidate query only references one interval bound
    /// (`lower` for before/meets, `upper` for met-by/after) — the class the
    /// paper singles out in Section 4.5 as poorly supported by the IB+-tree
    /// and IST.
    pub fn is_one_sided(&self) -> bool {
        matches!(
            self,
            AllenRelation::Before
                | AllenRelation::Meets
                | AllenRelation::MetBy
                | AllenRelation::After
        )
    }
}

impl RiTree {
    /// Reports the ids of all intervals standing in `rel` to `q`, with
    /// now-relative intervals resolved at time `now`.
    pub fn allen_at(&self, rel: AllenRelation, q: Interval, now: i64) -> Result<Vec<i64>> {
        // Candidate generation: a stab or intersection query guaranteed to
        // produce a superset of the exact result (see per-arm comments).
        let candidates = match rel {
            // I.upper == Q.lower or I.upper >= Q.lower at Q.lower ⇒ I
            // contains Q.lower.
            AllenRelation::Meets
            | AllenRelation::Overlaps
            | AllenRelation::Starts
            | AllenRelation::Equals
            | AllenRelation::Contains
            | AllenRelation::StartedBy => self.intersection_rows(Interval::point(q.lower), now)?,
            // These imply I contains Q.upper.
            AllenRelation::Finishes
            | AllenRelation::FinishedBy
            | AllenRelation::OverlappedBy
            | AllenRelation::MetBy => self.intersection_rows(Interval::point(q.upper), now)?,
            // Strictly inside Q ⇒ intersects Q.
            AllenRelation::During => self.intersection_rows(q, now)?,
            // I.upper < Q.lower ⇒ I ⊆ [min_lower, Q.lower − 1] intersects it.
            AllenRelation::Before => match self.min_lower() {
                Some(min) if min < q.lower => {
                    self.intersection_rows(Interval::new(min, q.lower - 1)?, now)?
                }
                _ => Vec::new(),
            },
            // Q.upper < I.lower ⇒ I intersects [Q.upper + 1, max bound].
            AllenRelation::After => {
                let hi = self.max_upper().unwrap_or(i64::MIN);
                if hi > q.upper {
                    self.intersection_rows(Interval::new(q.upper + 1, hi)?, now)?
                } else if self.has_open_intervals() && q.upper < i64::MAX - 2 {
                    // Open-ended intervals may start after every finite
                    // upper bound; probe the remaining space (their fork
                    // sentinels answer this — the virtual backbone is not
                    // involved).
                    self.intersection_rows(Interval::new(q.upper + 1, i64::MAX - 2)?, now)?
                } else {
                    Vec::new()
                }
            }
        };
        let mut ids: Vec<i64> = self
            .fetch_bounds(&candidates, now)?
            .into_iter()
            .filter(|(iv, _)| rel.matches(iv, &q))
            .map(|(_, id)| id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        Ok(ids)
    }

    /// [`RiTree::allen_at`] with now-relative intervals always current.
    pub fn allen(&self, rel: AllenRelation, q: Interval) -> Result<Vec<i64>> {
        self.allen_at(rel, q, crate::tree::UPPER_NOW - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk, DEFAULT_PAGE_SIZE};
    use ri_relstore::Database;
    use std::sync::Arc;

    fn tree_with(data: &[(i64, i64)]) -> RiTree {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::with_capacity(200),
        ));
        let db = Arc::new(Database::create(pool).unwrap());
        let tree = RiTree::create(db, "t").unwrap();
        for (id, &(l, u)) in data.iter().enumerate() {
            tree.insert(Interval::new(l, u).unwrap(), id as i64).unwrap();
        }
        tree
    }

    #[test]
    fn truth_table_on_canonical_examples() {
        let q = Interval::new(10, 20).unwrap();
        let cases: &[(AllenRelation, (i64, i64))] = &[
            (AllenRelation::Before, (1, 5)),
            (AllenRelation::Meets, (5, 10)),
            (AllenRelation::Overlaps, (5, 15)),
            (AllenRelation::Starts, (10, 15)),
            (AllenRelation::During, (12, 18)),
            (AllenRelation::Finishes, (15, 20)),
            (AllenRelation::Equals, (10, 20)),
            (AllenRelation::FinishedBy, (5, 20)),
            (AllenRelation::Contains, (5, 25)),
            (AllenRelation::StartedBy, (10, 25)),
            (AllenRelation::OverlappedBy, (15, 25)),
            (AllenRelation::MetBy, (20, 25)),
            (AllenRelation::After, (25, 30)),
        ];
        for &(rel, (l, u)) in cases {
            let i = Interval::new(l, u).unwrap();
            assert!(rel.matches(&i, &q), "{rel:?} should hold for {i} vs {q}");
            // Each canonical example satisfies exactly one relation.
            for &(other, _) in cases {
                if other != rel {
                    assert!(!other.matches(&i, &q), "{other:?} also holds for {i} vs {q}");
                }
            }
        }
    }

    #[test]
    fn relations_partition_generic_interval_pairs() {
        // For intervals in "general position" exactly one relation holds;
        // enumerate a dense grid to verify mutual exclusion + coverage.
        let q = Interval::new(4, 9).unwrap();
        for l in 0..14 {
            for u in l..14 {
                let i = Interval::new(l, u).unwrap();
                let held: Vec<_> =
                    AllenRelation::ALL.iter().filter(|r| r.matches(&i, &q)).collect();
                assert!(
                    !held.is_empty(),
                    "no relation holds for {i} vs {q} — the 13 relations must be exhaustive"
                );
                // Degenerate (point) intervals can satisfy meets+starts etc.
                // simultaneously; proper intervals in general position must
                // satisfy exactly one.
                if i.length() > 0 && q.length() > 0 && i.lower != q.upper && i.upper != q.lower {
                    let exclusive = [
                        AllenRelation::Before,
                        AllenRelation::Overlaps,
                        AllenRelation::During,
                        AllenRelation::Equals,
                        AllenRelation::Contains,
                        AllenRelation::After,
                    ];
                    let _ = exclusive;
                    assert_eq!(held.len(), 1, "{held:?} all hold for {i} vs {q}");
                }
            }
        }
    }

    #[test]
    fn inverse_is_involutive_and_consistent() {
        let a = Interval::new(3, 8).unwrap();
        let b = Interval::new(5, 12).unwrap();
        for rel in AllenRelation::ALL {
            assert_eq!(rel.inverse().inverse(), rel);
            assert_eq!(rel.matches(&a, &b), rel.inverse().matches(&b, &a), "{rel:?}");
        }
    }

    #[test]
    fn queries_agree_with_naive_filter() {
        let data: Vec<(i64, i64)> = (0..300)
            .map(|i| {
                let l = (i * 37) % 500;
                (l, l + (i * 13) % 60)
            })
            .collect();
        let tree = tree_with(&data);
        for q in [Interval::new(100, 160).unwrap(), Interval::new(250, 250).unwrap()] {
            for rel in AllenRelation::ALL {
                let got = tree.allen(rel, q).unwrap();
                let mut want: Vec<i64> = data
                    .iter()
                    .enumerate()
                    .filter(|(_, &(l, u))| rel.matches(&Interval::new(l, u).unwrap(), &q))
                    .map(|(id, _)| id as i64)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "{rel:?} on {q}");
            }
        }
    }

    #[test]
    fn one_sided_relations_flagged() {
        assert!(AllenRelation::Before.is_one_sided());
        assert!(AllenRelation::After.is_one_sided());
        assert!(AllenRelation::Meets.is_one_sided());
        assert!(AllenRelation::MetBy.is_one_sided());
        assert!(!AllenRelation::During.is_one_sided());
    }

    #[test]
    fn empty_tree_allen_queries() {
        let tree = tree_with(&[]);
        let q = Interval::new(5, 10).unwrap();
        for rel in AllenRelation::ALL {
            assert_eq!(tree.allen(rel, q).unwrap(), Vec::<i64>::new(), "{rel:?}");
        }
    }
}
