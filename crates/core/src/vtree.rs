//! The virtual backbone: pure arithmetic, no I/O.
//!
//! This module implements the paper's primary structure *without
//! materializing it* — the central idea of Section 3.  Four persistent
//! parameters (`offset`, `leftRoot`, `rightRoot`, `minstep`) describe a
//! virtual binary tree over the shifted data space; fork-node computation
//! (Figure 4), insertion-time parameter maintenance (Figure 6) and the
//! query-time traversal that fills the transient `leftNodes` / `rightNodes`
//! tables (Sections 4.1–4.3) are all integer arithmetic.
//!
//! # minstep representation
//!
//! The paper tracks the lowest backbone level at which intervals were
//! registered; conceptually the value can be 0.5 ("the minimum value of 0.5
//! for minstep will not be stored and, thus, the implementation by an
//! integer works well", Section 3.4).  We store `minstep2 = 2 · minstep`:
//! a fork found while descending with step `s` contributes `2·s`, and a fork
//! at a leaf (the conceptual 0.5) contributes 1 — which is why the stored
//! minimum is 1, matching the value the paper reports in Section 6.1.

/// The four persistent parameters of the virtual primary structure, plus
/// whether the offset has been fixed yet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackboneParams {
    /// Shift applied to bounds so the data space starts near 0; fixed by the
    /// first insertion (Section 3.4, "offset is fixed after having inserted
    /// the first interval").
    pub offset: Option<i64>,
    /// Root of the subtree of negative node values (`<= 0`, a negated power
    /// of two once set).
    pub left_root: i64,
    /// Root of the subtree of positive node values (`>= 0`, a power of two
    /// once set).
    pub right_root: i64,
    /// Twice the smallest registration step observed (see module docs);
    /// `i64::MAX` while no interval has been inserted ("initialized by
    /// infinity").
    pub minstep2: i64,
}

impl Default for BackboneParams {
    fn default() -> Self {
        BackboneParams { offset: None, left_root: 0, right_root: 0, minstep2: i64::MAX }
    }
}

/// The transient node collections a query traversal produces.
///
/// `left` rows are `(min, max)` node ranges joined against the *upper*
/// index with the additional condition `upper >= query.lower`; `right` rows
/// are single nodes joined against the *lower* index with
/// `lower <= query.upper` — exactly the two-fold query of Figure 9.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryNodes {
    /// `(min, max)` node ranges for the upper-index branch (shifted space).
    pub left: Vec<(i64, i64)>,
    /// Single nodes for the lower-index branch (shifted space).
    pub right: Vec<i64>,
}

/// `floor(log2(x))` for `x >= 1`.
#[inline]
pub fn floor_log2(x: i64) -> u32 {
    debug_assert!(x >= 1);
    63 - x.leading_zeros()
}

/// The paper's Figure 4: fork node of `(lower, upper)` in a *static* tree
/// rooted at `root` (no dynamic expansion).  Kept verbatim as a reference
/// implementation for tests and documentation.
pub fn fork_node_fig4(root: i64, lower: i64, upper: i64) -> i64 {
    debug_assert!(lower <= upper);
    let mut node = root;
    let mut step = node / 2;
    while step >= 1 {
        if upper < node {
            node -= step;
        } else if node < lower {
            node += step;
        } else {
            break;
        }
        step /= 2;
    }
    node
}

/// Result of a fork-node search in the dynamic (two-rooted) backbone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Fork {
    /// The fork node, in shifted coordinates.
    node: i64,
    /// `minstep2` candidate: `2·step` at the break, or 1 at a leaf.
    minstep2_candidate: i64,
}

impl BackboneParams {
    /// Fresh parameters (empty tree).
    pub fn new() -> BackboneParams {
        BackboneParams::default()
    }

    /// Shifts a raw bound into backbone coordinates.
    ///
    /// Returns `None` while no interval has fixed the offset.
    pub fn shift(&self, raw: i64) -> Option<i64> {
        self.offset.map(|off| raw - off)
    }

    /// Figure 6: computes the fork node for inserting `[lower, upper]`
    /// (raw coordinates) and updates `offset`, `leftRoot`, `rightRoot` and
    /// `minstep` — all in O(height) integer operations, no I/O.
    ///
    /// Returns the (shifted) node value to store in the `node` column.
    pub fn prepare_insert(&mut self, lower: i64, upper: i64) -> i64 {
        debug_assert!(lower <= upper);
        // "if (offset = NULL) offset = lower" — fixed by the first interval.
        let offset = *self.offset.get_or_insert(lower);
        let l = lower - offset;
        let u = upper - offset;
        // Expansion at the lower bound: leftRoot doubles (Section 3.4).
        if u < 0 && l <= 2 * self.left_root {
            self.left_root = -(1i64 << floor_log2(-l));
        }
        // Expansion at the upper bound: rightRoot doubles.
        if 0 < l && u >= 2 * self.right_root {
            self.right_root = 1i64 << floor_log2(u);
        }
        let fork = self.fork_search(l, u);
        // "if (node != 0 and step < minstep) minstep = step" — the global
        // root never contributes.
        if fork.node != 0 {
            self.minstep2 = self.minstep2.min(fork.minstep2_candidate);
        }
        fork.node
    }

    /// Pure fork-node computation for `[lower, upper]` with the *current*
    /// parameters (used by deletion; no parameters are modified).
    ///
    /// Fork nodes are stable under root expansion — doubling a root `R` to
    /// `2R` prepends one step that leads straight back to `R` — so the value
    /// computed at deletion time equals the one stored at insertion time.
    /// Returns `None` while the tree has no offset (nothing was inserted).
    pub fn fork_of(&self, lower: i64, upper: i64) -> Option<i64> {
        debug_assert!(lower <= upper);
        let offset = self.offset?;
        Some(self.fork_search(lower - offset, upper - offset).node)
    }

    /// Shared descent: Figure 6's loop over the two-rooted virtual tree.
    /// `l` and `u` are shifted coordinates.
    fn fork_search(&self, l: i64, u: i64) -> Fork {
        let mut node = if u < 0 {
            self.left_root
        } else if 0 < l {
            self.right_root
        } else {
            // The global root 0 overlaps [l, u].
            return Fork { node: 0, minstep2_candidate: i64::MAX };
        };
        let mut step = (node / 2).abs();
        while step >= 1 {
            if u < node {
                node -= step;
            } else if node < l {
                node += step;
            } else {
                return Fork { node, minstep2_candidate: 2 * step };
            }
            step /= 2;
        }
        // Loop exhausted: the fork is a leaf of the virtual tree (this is
        // the conceptual minstep of 0.5, stored as 1 — see module docs).
        Fork { node, minstep2_candidate: 1 }
    }

    /// Query traversal (Sections 4.1–4.3): computes the transient node
    /// collections for an intersection query `[lower, upper]` in raw
    /// coordinates.
    ///
    /// The returned `left` list already contains the `(lower−offset,
    /// upper−offset)` range pair of the Section 4.3 transformation, so the
    /// caller needs exactly the two-fold query of Figure 9.  Traversal
    /// descends at most to the level recorded in `minstep` (Section 3.4's
    /// granularity pruning) and costs no I/O.
    pub fn query_nodes(&self, lower: i64, upper: i64) -> QueryNodes {
        debug_assert!(lower <= upper);
        let Some(offset) = self.offset else {
            // Empty tree: no nodes to visit, no range pair needed.
            return QueryNodes::default();
        };
        // Saturating shift: queries may carry open-ended bounds near the
        // i64 extremes (e.g. the Allen `after` probe); no backbone node
        // lives out there, so clamping is lossless.
        let l = lower.saturating_sub(offset);
        let u = upper.saturating_sub(offset);
        let mut nodes = NodeCollector { l, u, left: Vec::new(), right: Vec::new() };

        // The global root 0 lies on every search path.  It never updates
        // minstep (Figure 6), so it is always eligible to hold intervals.
        nodes.visit(0);
        if l < 0 && self.left_root != 0 {
            self.walk(self.left_root, l, &mut nodes);
            if u < 0 {
                self.walk(self.left_root, u, &mut nodes);
            }
        }
        if u > 0 && self.right_root != 0 {
            self.walk(self.right_root, u, &mut nodes);
            if l > 0 {
                self.walk(self.right_root, l, &mut nodes);
            }
        }
        // Shared path prefixes visit nodes twice; deduplicate.
        nodes.left.sort_unstable();
        nodes.left.dedup();
        nodes.right.sort_unstable();
        nodes.right.dedup();

        let mut left: Vec<(i64, i64)> = nodes.left.into_iter().map(|w| (w, w)).collect();
        // Section 4.3: the BETWEEN subquery becomes one more (min, max) pair
        // in leftNodes; by the Lemma, adding `upper >= :lower` to it loses
        // no results.
        left.push((l, u));
        QueryNodes { left, right: nodes.right }
    }

    /// Walks the point-search path from `root` towards `target`, visiting
    /// every node on it that may hold registered intervals.
    ///
    /// The union of the paths towards `lower` and `upper` is exactly the
    /// node set the paper's three-phase algorithm (Section 4.1) inspects:
    /// the shared prefix is phase (1), the divergent suffixes are phases
    /// (2) and (3).
    fn walk(&self, root: i64, target: i64, nodes: &mut NodeCollector) {
        let mut node = root;
        // Check-step of `node`: the step value Figure 6's loop would carry
        // when testing it.  `2*c >= minstep2` ⇔ the node can hold intervals.
        let mut c = (node / 2).abs();
        loop {
            let eligible = if c >= 1 { 2 * c >= self.minstep2 } else { self.minstep2 <= 1 };
            if eligible {
                nodes.visit(node);
            } else {
                // Deeper nodes have even smaller check-steps: prune.
                return;
            }
            if node == target || c < 1 {
                return;
            }
            if target < node {
                node -= c;
            } else {
                node += c;
            }
            c /= 2;
        }
    }

    /// Tree height per Section 3.5: `log2(m) + 1` with
    /// `m = max(|leftRoot|, rightRoot) / minstep` (conceptual minstep, i.e.
    /// `2·max/minstep2` in our representation).  Returns 0 for an empty
    /// tree.  The height depends only on data-space expansion and
    /// granularity, never on the number of intervals.
    pub fn height(&self) -> u32 {
        let spread = self.left_root.abs().max(self.right_root);
        if spread == 0 {
            return if self.offset.is_some() { 1 } else { 0 };
        }
        let m = (2 * spread) / self.minstep2.max(1);
        floor_log2(m.max(1)) + 1
    }
}

/// Classifies visited nodes relative to the (shifted) query interval.
struct NodeCollector {
    l: i64,
    u: i64,
    left: Vec<i64>,
    right: Vec<i64>,
}

impl NodeCollector {
    fn visit(&mut self, w: i64) {
        if w < self.l {
            // Left of the query: scan U(w) for upper >= query.lower.
            self.left.push(w);
        } else if w > self.u {
            // Right of the query: scan L(w) for lower <= query.upper.
            self.right.push(w);
        }
        // l <= w <= u: covered by the BETWEEN range pair — nothing to do.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_reference_examples() {
        // Tree over [1, 15], root 8.
        assert_eq!(fork_node_fig4(8, 8, 8), 8);
        assert_eq!(fork_node_fig4(8, 3, 5), 4);
        assert_eq!(fork_node_fig4(8, 5, 7), 6);
        assert_eq!(fork_node_fig4(8, 5, 5), 5);
        assert_eq!(fork_node_fig4(8, 3, 9), 8, "spans the root");
        assert_eq!(fork_node_fig4(8, 13, 13), 13);
        // The fork node is the highest node inside the interval.
        for l in 1..=15 {
            for u in l..=15 {
                let f = fork_node_fig4(8, l, u);
                assert!((l..=u).contains(&f), "fork {f} outside [{l}, {u}]");
            }
        }
    }

    #[test]
    fn first_insert_fixes_offset_and_forks_at_zero() {
        let mut p = BackboneParams::new();
        let node = p.prepare_insert(1000, 1010);
        assert_eq!(p.offset, Some(1000));
        // Shifted interval [0, 10] contains 0, so the fork is the global root.
        assert_eq!(node, 0);
        assert_eq!(p.minstep2, i64::MAX, "root registrations never update minstep");
    }

    #[test]
    fn right_root_doubles_with_data_space() {
        let mut p = BackboneParams::new();
        p.prepare_insert(0, 0); // offset = 0
        p.prepare_insert(3, 3);
        assert_eq!(p.right_root, 2);
        p.prepare_insert(5, 6);
        assert_eq!(p.right_root, 4);
        p.prepare_insert(1000, 1000);
        assert_eq!(p.right_root, 512);
        // Expanding the space must not move existing forks.
        assert_eq!(p.fork_of(3, 3), Some(3));
        assert_eq!(p.fork_of(5, 6), Some(6));
    }

    #[test]
    fn left_root_expansion_for_late_low_intervals() {
        let mut p = BackboneParams::new();
        p.prepare_insert(100, 110); // offset = 100
        let node = p.prepare_insert(40, 50); // shifted [-60, -50]
        assert!(node < 0);
        assert_eq!(p.left_root, -(1 << floor_log2(60)));
        assert_eq!(p.fork_of(40, 50), Some(node));
    }

    #[test]
    fn fork_is_stable_under_later_expansion() {
        let mut p = BackboneParams::new();
        p.prepare_insert(0, 0);
        let mut stored = Vec::new();
        let data: Vec<(i64, i64)> = (1..200).map(|i| (i * 3, i * 3 + (i % 7))).collect();
        for &(l, u) in &data {
            stored.push(p.prepare_insert(l, u));
        }
        for (i, &(l, u)) in data.iter().enumerate() {
            assert_eq!(p.fork_of(l, u), Some(stored[i]), "fork moved for [{l}, {u}]");
        }
    }

    #[test]
    fn fork_lemma_interval_not_below_its_length_level() {
        // Section 3.4 Lemma: an interval (l, u) is never registered below
        // level floor(log2(u - l)); with our minstep2 = 2*step encoding the
        // registration step satisfies 2*step >= 2^floor(log2(u-l)).
        let mut p = BackboneParams::new();
        p.prepare_insert(0, 1 << 20);
        let mut x = 0x243F6A8885A308D3u64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let l = (x % (1 << 20)) as i64;
            let len = ((x >> 32) % 4096) as i64;
            let u = (l + len).min((1 << 20) - 1);
            let before = p.minstep2;
            p.prepare_insert(l, u);
            if u > l && p.minstep2 < before {
                let level = floor_log2(u - l);
                assert!(
                    p.minstep2 >= (1 << level),
                    "interval [{l},{u}] registered below level {level}: minstep2 {}",
                    p.minstep2
                );
            }
        }
    }

    #[test]
    fn point_inserts_drive_minstep_to_one() {
        let mut p = BackboneParams::new();
        p.prepare_insert(0, 1 << 12);
        assert_eq!(p.minstep2, i64::MAX);
        p.prepare_insert(41, 41); // odd point: leaf registration
        assert_eq!(p.minstep2, 1, "Section 6.1: minstep reaches its minimum value");
    }

    #[test]
    fn query_nodes_empty_tree() {
        let p = BackboneParams::new();
        assert_eq!(p.query_nodes(5, 10), QueryNodes::default());
    }

    #[test]
    fn query_nodes_contain_between_pair() {
        let mut p = BackboneParams::new();
        p.prepare_insert(100, 200);
        let q = p.query_nodes(150, 160);
        // Shifted query is [50, 60].
        assert!(q.left.contains(&(50, 60)), "missing BETWEEN pair: {q:?}");
    }

    #[test]
    fn query_node_lists_are_disjoint_from_covered_range() {
        let mut p = BackboneParams::new();
        for i in 0..500i64 {
            p.prepare_insert(i * 7, i * 7 + i % 13);
        }
        let (lo, hi) = (777, 1234);
        let q = p.query_nodes(lo, hi);
        let (l, u) = (lo - p.offset.unwrap(), hi - p.offset.unwrap());
        for &(a, b) in &q.left[..q.left.len() - 1] {
            assert_eq!(a, b, "side entries are single nodes");
            assert!(a < l, "left node {a} not strictly left of query");
        }
        for &w in &q.right {
            assert!(w > u, "right node {w} not strictly right of query");
        }
        // No duplicates.
        let mut seen = std::collections::BTreeSet::new();
        for &(a, _) in &q.left[..q.left.len() - 1] {
            assert!(seen.insert(a));
        }
        for &w in &q.right {
            assert!(seen.insert(w));
        }
    }

    #[test]
    fn traversal_length_is_logarithmic() {
        let mut p = BackboneParams::new();
        p.prepare_insert(0, 0);
        p.prepare_insert(1 << 20, (1 << 20) + 1); // expand to 2^20
        p.prepare_insert(17, 17); // minstep 1: full-depth descents
        let q = p.query_nodes(123_456, 234_567);
        let h = p.height() as usize;
        assert!(
            q.left.len() + q.right.len() <= 2 * h + 3,
            "{} + {} node entries exceeds 2h+3 with h = {h}",
            q.left.len(),
            q.right.len()
        );
    }

    #[test]
    fn minstep_prunes_deep_levels() {
        let mut p = BackboneParams::new();
        // Only long intervals: registrations stay at high levels.
        p.prepare_insert(0, 1 << 16);
        for i in 0..100i64 {
            let l = i * 512;
            p.prepare_insert(l, l + 2048);
        }
        let coarse = p.query_nodes(10_000, 10_001);
        let coarse_nodes = coarse.left.len() + coarse.right.len();
        // Now add a point: minstep collapses to 1 and descents deepen.
        p.prepare_insert(33_333, 33_333);
        let fine = p.query_nodes(10_000, 10_001);
        let fine_nodes = fine.left.len() + fine.right.len();
        assert!(
            coarse_nodes < fine_nodes,
            "granularity pruning had no effect: {coarse_nodes} vs {fine_nodes}"
        );
    }

    #[test]
    fn height_tracks_expansion_not_cardinality() {
        let mut p = BackboneParams::new();
        p.prepare_insert(0, 1);
        p.prepare_insert(5, 5);
        let h_small = p.height();
        // Ten thousand more intervals in the same space: height unchanged.
        for i in 0..10_000i64 {
            p.prepare_insert(i % 7, i % 7 + 1);
        }
        assert_eq!(p.height(), h_small);
        // Expanding the space grows the height logarithmically.
        p.prepare_insert(1 << 19, 1 << 19);
        assert!(p.height() >= 19);
        assert!(p.height() <= 21);
    }
}
