//! A read-through in-memory hot tier over the paged [`RiTree`].
//!
//! The RI-tree pays a relational B-tree descent — buffer-pool page
//! accesses — on every query, even when the working set is a handful of
//! hot domain regions.  [`HotTier`] puts a [`HintIndex`] (the
//! hierarchical comparison-free interval index from `ri-mem`) in front
//! of the tree: queries that land entirely on *resident* domain blocks
//! are answered from memory without touching the pool at all.
//!
//! # Block-grained read-through caching
//!
//! The configured domain (default: the paper's `[0, 2^20)`) splits into
//! equal *blocks* of `2^block_bits` values.  The unit of admission and
//! eviction is the block, not the interval: a block is *resident* when
//! every live interval intersecting it is present in the HINT, so a
//! query whose span touches only resident blocks can be answered
//! exactly from memory.  On a miss, the tier runs the query against the
//! tree (one block-aligned fetch covering the query's span), returns
//! the filtered answer, and *may* install the fetched blocks:
//!
//! * **Admission is 2Q-style with a frequency gate**: a block is
//!   admitted on its second miss while on the ghost list, so one-off
//!   probes into cold regions don't thrash the budget — only
//!   re-referenced blocks earn residency.  Once the tier is at budget,
//!   a candidate must additionally be touched more often (per a
//!   TinyLFU-style decaying counter) than the weakest resident block:
//!   under a skewed stream the steady tail would otherwise keep
//!   re-qualifying via the ghost list and churn hot blocks out.
//! * **Eviction is lowest-frequency-first** on the same decaying
//!   counters the gate uses: when the cached-interval budget is
//!   exceeded, the least-touched resident block goes (ties broken by
//!   block number, keeping runs deterministic).  Using one metric for
//!   both decisions means an admitted block displaces exactly the
//!   block it beat at the gate — admission and eviction can never
//!   disagree and churn each other.  Intervals are refcounted by the
//!   number of resident blocks they intersect and leave the HINT when
//!   the last one goes.
//!
//! # Coherence: the write path, not vacuum
//!
//! PR 5's B-link deletes never reclaim pages, so there is no vacuum
//! pass to hang invalidation on — and none is needed.  All DML must go
//! through the tier's [`HotTier::insert`] / [`HotTier::delete`]
//! wrappers (that is the contract; use [`HotTier::invalidate_all`]
//! after any out-of-band write).  A writer first applies the tree
//! operation, then — under the tier lock — bumps an *epoch counter* and
//! updates the HINT in place: inserts land in the cache immediately
//! when they intersect a resident block, deletes remove the cached
//! entry.  Admissions read the epoch before their unlocked tree fetch
//! and install only if it is unchanged, so a fetch that raced a writer
//! is discarded (the query still returns its — valid at fetch time —
//! answer).  Hits are served entirely under the same lock the writers
//! update through, so a query through the tier can never return a
//! deleted interval or miss a committed insert; `tests/hot_tier.rs`
//! stress-tests exactly that contract under concurrent DML.
//!
//! Open-ended intervals (Section 4.6's `now`/∞) have query-dependent
//! bounds and are never cached; while any are stored, every query
//! bypasses the tier.  Intervals reaching outside the configured
//! domain are cached with their bounds clamped to it — equivalent for
//! every in-domain query, and queries outside the domain bypass.

use crate::interval::Interval;
use crate::tree::{OpenEnd, RiTree};
use ri_mem::HintIndex;
use ri_pagestore::Result;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Mutex;

/// Every this many block touches, all frequency counters halve (the
/// TinyLFU aging step keeping the admission gate adaptive).
const FREQ_DECAY_PERIOD: u64 = 2048;

/// Geometry and budget of a [`HotTier`].
#[derive(Clone, Copy, Debug)]
pub struct HotTierConfig {
    /// Lowest cacheable domain value.
    pub domain_lower: i64,
    /// The cacheable domain spans `2^domain_bits` values (default 20,
    /// the paper's data space).
    pub domain_bits: u32,
    /// Blocks — the admission/eviction grain — span `2^block_bits`
    /// values (default 14: 64 blocks over the paper domain).
    pub block_bits: u32,
    /// Maximum cached intervals; lowest-frequency blocks are evicted
    /// beyond it.
    pub capacity: usize,
    /// Ghost-list length for 2Q admission: how many recently-missed
    /// blocks are remembered as admission candidates.
    pub ghost_capacity: usize,
}

impl Default for HotTierConfig {
    fn default() -> HotTierConfig {
        HotTierConfig {
            domain_lower: 0,
            domain_bits: 20,
            block_bits: 14,
            capacity: 32_768,
            ghost_capacity: 32,
        }
    }
}

impl HotTierConfig {
    /// Default geometry with an explicit interval budget.
    pub fn with_capacity(capacity: usize) -> HotTierConfig {
        HotTierConfig { capacity, ..HotTierConfig::default() }
    }
}

/// Counters describing a [`HotTier`]'s behaviour so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotTierStats {
    /// Queries answered entirely from the HINT.
    pub hits: u64,
    /// Queries that went to the tree (span not fully resident).
    pub misses: u64,
    /// Queries that skipped the tier (open intervals stored, or the
    /// query leaves the configured domain).
    pub bypasses: u64,
    /// Blocks admitted to residency.
    pub admissions: u64,
    /// Admissions discarded because a writer raced the fetch.
    pub aborted_admissions: u64,
    /// Blocks evicted over budget (lowest frequency first).
    pub evicted_blocks: u64,
    /// Cached entries removed by write-path deletes.
    pub invalidations: u64,
    /// Intervals currently cached.
    pub cached_intervals: usize,
    /// Blocks currently resident.
    pub resident_blocks: usize,
}

struct TierState {
    hint: HintIndex,
    /// Resident blocks.
    resident: HashSet<u64>,
    /// 2Q ghost list: recently missed, not (yet) admitted blocks.
    ghosts: VecDeque<u64>,
    /// TinyLFU-style decaying touch counters per block (hits and
    /// misses alike); at budget, admission requires a candidate to be
    /// touched more often than the weakest resident block.
    freq: HashMap<u64, u32>,
    /// Block touches since the last halving of `freq`.
    freq_touches: u64,
    /// Cached triple → number of resident blocks it intersects.
    refcount: HashMap<(i64, i64, i64), u32>,
    /// Bumped by every write; admissions installing across an epoch
    /// change are discarded.
    epoch: u64,
    hits: u64,
    misses: u64,
    bypasses: u64,
    admissions: u64,
    aborted_admissions: u64,
    evicted_blocks: u64,
    invalidations: u64,
}

/// The read-through hot tier; see the module docs for the design.
///
/// All methods take `&self`; the tier is `Sync` and meant to be shared
/// (e.g. in an `Arc`) between reader and writer threads.  **Contract:**
/// every insert/delete against the underlying tree goes through
/// [`HotTier::insert`] / [`HotTier::delete`] (or is followed by
/// [`HotTier::invalidate_all`]), and each `(interval, id)` pair is live
/// at most once — the same uniqueness the RI-tree's disjoint query
/// branches already assume.
pub struct HotTier {
    tree: RiTree,
    cfg: HotTierConfig,
    state: Mutex<TierState>,
}

impl HotTier {
    /// Wraps `tree` with an empty tier.
    ///
    /// # Panics
    /// Panics on a degenerate geometry (`block_bits > domain_bits`,
    /// `domain_bits` outside `[1, 40]`, or a zero capacity).
    pub fn new(tree: RiTree, cfg: HotTierConfig) -> HotTier {
        assert!(cfg.block_bits <= cfg.domain_bits, "blocks wider than the domain");
        assert!(cfg.capacity > 0, "zero interval budget");
        let hint = HintIndex::new(cfg.domain_lower, cfg.domain_bits);
        HotTier {
            tree,
            cfg,
            state: Mutex::new(TierState {
                hint,
                resident: HashSet::new(),
                ghosts: VecDeque::new(),
                freq: HashMap::new(),
                freq_touches: 0,
                refcount: HashMap::new(),
                epoch: 0,
                hits: 0,
                misses: 0,
                bypasses: 0,
                admissions: 0,
                aborted_admissions: 0,
                evicted_blocks: 0,
                invalidations: 0,
            }),
        }
    }

    /// The wrapped tree (read-only access; route DML through the tier).
    pub fn tree(&self) -> &RiTree {
        &self.tree
    }

    /// Unwraps the tier, returning the tree.
    pub fn into_tree(self) -> RiTree {
        self.tree
    }

    /// Current counters.
    pub fn stats(&self) -> HotTierStats {
        let st = self.state.lock().unwrap();
        HotTierStats {
            hits: st.hits,
            misses: st.misses,
            bypasses: st.bypasses,
            admissions: st.admissions,
            aborted_admissions: st.aborted_admissions,
            evicted_blocks: st.evicted_blocks,
            invalidations: st.invalidations,
            cached_intervals: st.refcount.len(),
            resident_blocks: st.resident.len(),
        }
    }

    /// Drops every cached entry (and all residency) in one step — the
    /// escape hatch after out-of-band writes to the underlying tree.
    pub fn invalidate_all(&self) {
        let mut st = self.state.lock().unwrap();
        st.epoch += 1;
        st.hint = HintIndex::new(self.cfg.domain_lower, self.cfg.domain_bits);
        st.resident.clear();
        st.ghosts.clear();
        st.freq.clear();
        st.freq_touches = 0;
        st.refcount.clear();
    }

    // ------------------------------------------------------------------
    // Write path: tree first, then the cache under the epoch
    // ------------------------------------------------------------------

    /// Inserts through the tier: the tree operation, then the cache
    /// update (the interval lands in the HINT immediately if it
    /// intersects a resident block).
    pub fn insert(&self, iv: Interval, id: i64) -> Result<()> {
        self.tree.insert(iv, id)?;
        let mut st = self.state.lock().unwrap();
        st.epoch += 1;
        if let Some((cl, cu)) = self.clamp(iv) {
            let k = self.resident_overlaps(&st, cl, cu);
            if k > 0 {
                // `insert` returns the previous value: an occupied entry
                // means an admission raced us and already cached the
                // triple — overwriting with the recomputed count restores
                // the refcount invariant without a duplicate HINT entry.
                if st.refcount.insert((cl, cu, id), k).is_none() {
                    st.hint.insert(cl, cu, id);
                }
                self.evict_over_budget(&mut st);
            }
        }
        Ok(())
    }

    /// Deletes through the tier: the tree operation, then cache
    /// invalidation of the exact entry.
    pub fn delete(&self, iv: Interval, id: i64) -> Result<bool> {
        let deleted = self.tree.delete(iv, id)?;
        if deleted {
            let mut st = self.state.lock().unwrap();
            st.epoch += 1;
            if let Some((cl, cu)) = self.clamp(iv) {
                if st.refcount.remove(&(cl, cu, id)).is_some() {
                    st.hint.delete(cl, cu, id);
                    st.invalidations += 1;
                }
            }
        }
        Ok(deleted)
    }

    /// Inserts an open-ended interval (never cached; while any are
    /// stored every query bypasses the tier).
    pub fn insert_open(&self, lower: i64, end: OpenEnd, id: i64) -> Result<()> {
        self.tree.insert_open(lower, end, id)?;
        self.state.lock().unwrap().epoch += 1;
        Ok(())
    }

    /// Deletes an open-ended interval.
    pub fn delete_open(&self, lower: i64, end: OpenEnd, id: i64) -> Result<bool> {
        let deleted = self.tree.delete_open(lower, end, id)?;
        if deleted {
            self.state.lock().unwrap().epoch += 1;
        }
        Ok(deleted)
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Intersection query through the tier; identical results to
    /// [`RiTree::intersection`], minus the page accesses on a hit.
    pub fn intersection(&self, q: Interval) -> Result<Vec<i64>> {
        let (dom_lo, dom_hi) = self.domain();
        if q.lower < dom_lo || q.upper > dom_hi || self.tree.has_open_intervals() {
            self.state.lock().unwrap().bypasses += 1;
            return self.tree.intersection(q);
        }
        let first = self.block_of(q.lower);
        let last = self.block_of(q.upper);
        let (epoch0, admit) = {
            let mut st = self.state.lock().unwrap();
            for b in first..=last {
                Self::touch_freq(&mut st, b);
            }
            if (first..=last).all(|b| st.resident.contains(&b)) {
                st.hits += 1;
                return Ok(st.hint.intersection(q.lower, q.upper));
            }
            st.misses += 1;
            // 2Q admission: a missing block is admitted only if it is on
            // the ghost list (second miss); otherwise it becomes a ghost.
            let mut admit = Vec::new();
            for b in first..=last {
                if st.resident.contains(&b) {
                    continue;
                }
                if let Some(pos) = st.ghosts.iter().position(|&g| g == b) {
                    st.ghosts.remove(pos);
                    admit.push(b);
                } else {
                    if st.ghosts.len() >= self.cfg.ghost_capacity {
                        st.ghosts.pop_front();
                    }
                    st.ghosts.push_back(b);
                }
            }
            // TinyLFU-style gate: once admitting would push the tier
            // over budget, a candidate must beat the weakest resident
            // block's touch count by a margin of 2 — otherwise Zipf-tail
            // traffic steadily churns hot blocks out, and blocks of
            // near-equal frequency at the budget boundary keep swapping
            // (each swap costs a span fetch and gains nothing; the
            // margin is hysteresis against exactly that).  A rejected
            // candidate goes back on the ghost list, so a block that
            // keeps missing accumulates frequency and eventually wins
            // the gate.
            if !admit.is_empty() && !st.resident.is_empty() {
                let per_block = st.refcount.len() / st.resident.len();
                if st.refcount.len() + per_block * admit.len() > self.cfg.capacity {
                    let weakest = st
                        .resident
                        .iter()
                        .map(|b| st.freq.get(b).copied().unwrap_or(0))
                        .min()
                        .unwrap_or(0);
                    let st = &mut *st;
                    admit.retain(|b| {
                        if st.freq.get(b).copied().unwrap_or(0) > weakest.saturating_add(1) {
                            return true;
                        }
                        if st.ghosts.len() >= self.cfg.ghost_capacity {
                            st.ghosts.pop_front();
                        }
                        st.ghosts.push_back(*b);
                        false
                    });
                }
            }
            if admit.is_empty() {
                drop(st);
                return self.tree.intersection(q);
            }
            (st.epoch, admit)
        };
        // Fetch outside the lock: one block-aligned, index-only tree
        // query covering the span ([`RiTree::span_snapshot`] joins the
        // two composite indexes instead of probing the heap per row),
        // so the admitted blocks become fully resident.
        let span = Interval { lower: self.block_lo(first), upper: self.block_hi(last) };
        let fetched = self.tree.span_snapshot(span)?;
        let mut triples = Vec::with_capacity(fetched.len());
        let mut ids = Vec::new();
        for (iv, id) in fetched {
            if iv.lower <= q.upper && q.lower <= iv.upper {
                ids.push(id);
            }
            triples.push((iv.lower.max(dom_lo), iv.upper.min(dom_hi), id));
        }
        ids.sort_unstable();
        let mut st = self.state.lock().unwrap();
        if st.epoch != epoch0 {
            // A writer raced the fetch; the answer (valid at fetch time)
            // stands, the installation does not.
            st.aborted_admissions += 1;
            return Ok(ids);
        }
        for &b in &admit {
            st.resident.insert(b);
        }
        st.admissions += admit.len() as u64;
        for &(cl, cu, id) in &triples {
            let k =
                admit.iter().filter(|&&b| self.block_lo(b) <= cu && cl <= self.block_hi(b)).count()
                    as u32;
            if k == 0 {
                continue; // intersects only already-resident span blocks: cached
            }
            match st.refcount.entry((cl, cu, id)) {
                std::collections::hash_map::Entry::Occupied(mut e) => *e.get_mut() += k,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(k);
                    st.hint.insert(cl, cu, id);
                }
            }
        }
        self.evict_over_budget(&mut st);
        Ok(ids)
    }

    /// Stabbing query through the tier.
    pub fn stab(&self, p: i64) -> Result<Vec<i64>> {
        self.intersection(Interval::point(p))
    }

    // ------------------------------------------------------------------
    // Geometry + eviction
    // ------------------------------------------------------------------

    fn domain(&self) -> (i64, i64) {
        (self.cfg.domain_lower, self.cfg.domain_lower + (1i64 << self.cfg.domain_bits) - 1)
    }

    fn block_of(&self, v: i64) -> u64 {
        ((v - self.cfg.domain_lower) >> self.cfg.block_bits) as u64
    }

    fn block_lo(&self, b: u64) -> i64 {
        self.cfg.domain_lower + ((b as i64) << self.cfg.block_bits)
    }

    fn block_hi(&self, b: u64) -> i64 {
        self.block_lo(b) + (1i64 << self.cfg.block_bits) - 1
    }

    /// Clamps an interval to the domain; `None` if disjoint from it
    /// (such intervals can never affect an in-domain, non-bypassed
    /// query, so they are simply not cached).
    fn clamp(&self, iv: Interval) -> Option<(i64, i64)> {
        let (lo, hi) = self.domain();
        if iv.upper < lo || iv.lower > hi {
            return None;
        }
        Some((iv.lower.max(lo), iv.upper.min(hi)))
    }

    /// Bumps a block's decaying touch counter; every
    /// [`FREQ_DECAY_PERIOD`] touches all counters halve, so frequency
    /// reflects the recent past and a workload shift can displace old
    /// residents.
    fn touch_freq(st: &mut TierState, b: u64) {
        st.freq_touches += 1;
        if st.freq_touches % FREQ_DECAY_PERIOD == 0 {
            st.freq.retain(|_, v| {
                *v /= 2;
                *v > 0
            });
        }
        *st.freq.entry(b).or_insert(0) += 1;
    }

    /// Number of resident blocks intersecting `[cl, cu]` (domain-clamped).
    fn resident_overlaps(&self, st: &TierState, cl: i64, cu: i64) -> u32 {
        (self.block_of(cl)..=self.block_of(cu)).filter(|b| st.resident.contains(b)).count() as u32
    }

    /// Lowest-frequency-first eviction until the interval budget holds
    /// (ties broken by block number: the victim order is deterministic
    /// even though residency is hashed).
    fn evict_over_budget(&self, st: &mut TierState) {
        while st.refcount.len() > self.cfg.capacity {
            let Some(b) = st
                .resident
                .iter()
                .min_by_key(|b| (st.freq.get(b).copied().unwrap_or(0), **b))
                .copied()
            else {
                break;
            };
            st.resident.remove(&b);
            st.evicted_blocks += 1;
            for (cl, cu, id) in st.hint.intersecting_triples(self.block_lo(b), self.block_hi(b)) {
                let count = st.refcount.get_mut(&(cl, cu, id)).expect("cached triple refcount");
                *count -= 1;
                if *count == 0 {
                    st.refcount.remove(&(cl, cu, id));
                    st.hint.delete(cl, cu, id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk, DEFAULT_PAGE_SIZE};
    use ri_relstore::Database;
    use std::sync::Arc;

    fn fresh_tier(cfg: HotTierConfig) -> HotTier {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::with_capacity(200),
        ));
        let db = Arc::new(Database::create(pool).unwrap());
        HotTier::new(RiTree::create(db, "hot").unwrap(), cfg)
    }

    fn iv(l: i64, u: i64) -> Interval {
        Interval::new(l, u).unwrap()
    }

    #[test]
    fn second_identical_query_hits_and_matches() {
        let tier = fresh_tier(HotTierConfig::default());
        for i in 0..500 {
            tier.insert(iv(i * 100, i * 100 + 250), i).unwrap();
        }
        let q = iv(10_000, 12_000);
        let direct = tier.tree().intersection(q).unwrap();
        let first = tier.intersection(q).unwrap();
        let second = tier.intersection(q).unwrap(); // ghost promoted
        let third = tier.intersection(q).unwrap(); // resident now
        assert_eq!(first, direct);
        assert_eq!(second, direct);
        assert_eq!(third, direct);
        let stats = tier.stats();
        assert!(stats.hits >= 1, "stats {stats:?}");
        assert!(stats.admissions >= 1, "stats {stats:?}");
    }

    #[test]
    fn writes_update_a_resident_block() {
        let tier = fresh_tier(HotTierConfig::default());
        for i in 0..200 {
            tier.insert(iv(i * 50, i * 50 + 120), i).unwrap();
        }
        let q = iv(3_000, 4_000);
        // Two misses admit the block span, third query hits.
        for _ in 0..3 {
            tier.intersection(q).unwrap();
        }
        assert!(tier.stats().hits >= 1);
        // Mutate through the tier: a new interval and a delete, both
        // inside the resident span, must be visible on the next (hit)
        // query with no extra misses.
        tier.insert(iv(3_500, 3_600), 9_000).unwrap();
        assert!(tier.delete(iv(3_000, 3_120), 60).unwrap());
        let hits_before = tier.stats().hits;
        let got = tier.intersection(q).unwrap();
        assert_eq!(got, tier.tree().intersection(q).unwrap());
        assert!(got.contains(&9_000));
        assert!(!got.contains(&60));
        assert_eq!(tier.stats().hits, hits_before + 1, "must stay a hit");
    }

    #[test]
    fn eviction_respects_the_budget_and_sweeps_do_not_thrash() {
        let cfg = HotTierConfig { capacity: 64, ghost_capacity: 64, ..HotTierConfig::default() };
        let tier = fresh_tier(cfg);
        for i in 0..1_000 {
            tier.insert(iv(i * 1000, i * 1000 + 400), i).unwrap();
        }
        // Sweep queries across the domain twice: the second pass turns
        // every block into an admission candidate, but once the budget
        // is full the frequency gate rejects equally-cold candidates —
        // a scan must not churn the cache.
        for pass in 0..2 {
            for b in 0..60 {
                let lo = b * 16_384;
                let q = iv(lo, lo + 1_000);
                let got = tier.intersection(q).unwrap();
                assert_eq!(got, tier.tree().intersection(q).unwrap(), "pass {pass} block {b}");
            }
        }
        let after_sweeps = tier.stats();
        assert!(after_sweeps.admissions > 0, "stats {after_sweeps:?}");
        assert_eq!(after_sweeps.evicted_blocks, 0, "a sweep must not evict: {after_sweeps:?}");
        // A genuinely hot region accumulates frequency, wins the gate,
        // and displaces the sweep-admitted residents.
        for _ in 0..6 {
            for b in 40..44 {
                let lo = b * 16_384;
                let q = iv(lo, lo + 1_000);
                assert_eq!(tier.intersection(q).unwrap(), tier.tree().intersection(q).unwrap());
            }
        }
        let stats = tier.stats();
        assert!(stats.evicted_blocks > 0, "hot blocks must displace cold ones: {stats:?}");
        assert!(stats.cached_intervals <= 64 + 40, "budget wildly exceeded: {stats:?}");
    }

    #[test]
    fn open_intervals_force_bypass() {
        let tier = fresh_tier(HotTierConfig::default());
        for i in 0..50 {
            tier.insert(iv(i * 10, i * 10 + 30), i).unwrap();
        }
        tier.insert_open(100, OpenEnd::Infinity, 777).unwrap();
        let q = iv(90, 200);
        for _ in 0..3 {
            let got = tier.intersection(q).unwrap();
            assert!(got.contains(&777));
        }
        let stats = tier.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.bypasses, 3, "stats {stats:?}");
        // Removing the open interval re-enables the tier.
        assert!(tier.delete_open(100, OpenEnd::Infinity, 777).unwrap());
        for _ in 0..3 {
            assert_eq!(tier.intersection(q).unwrap(), tier.tree().intersection(q).unwrap());
        }
        assert!(tier.stats().hits >= 1);
    }

    #[test]
    fn out_of_domain_data_and_queries() {
        let cfg = HotTierConfig { domain_bits: 10, block_bits: 7, ..HotTierConfig::default() };
        let tier = fresh_tier(cfg); // domain [0, 1024)
        tier.insert(iv(-500, 100), 1).unwrap(); // straddles the lower edge
        tier.insert(iv(1_000, 5_000), 2).unwrap(); // straddles the upper edge
        tier.insert(iv(2_000, 3_000), 3).unwrap(); // fully outside
        tier.insert(iv(200, 300), 4).unwrap(); // inside
        for _ in 0..3 {
            assert_eq!(tier.intersection(iv(0, 1023)).unwrap(), vec![1, 2, 4]);
            assert_eq!(tier.intersection(iv(50, 250)).unwrap(), vec![1, 4]);
            // Out-of-domain query: bypassed, still correct.
            assert_eq!(tier.intersection(iv(1_500, 2_500)).unwrap(), vec![2, 3]);
        }
        assert!(tier.stats().hits >= 2);
        assert!(tier.stats().bypasses >= 3);
        // Deleting an edge-straddling interval invalidates its clamped copy.
        assert!(tier.delete(iv(-500, 100), 1).unwrap());
        assert_eq!(tier.intersection(iv(0, 1023)).unwrap(), vec![2, 4]);
    }

    #[test]
    fn invalidate_all_survives_out_of_band_writes() {
        let tier = fresh_tier(HotTierConfig::default());
        for i in 0..100 {
            tier.insert(iv(i * 20, i * 20 + 50), i).unwrap();
        }
        let q = iv(500, 800);
        for _ in 0..3 {
            tier.intersection(q).unwrap();
        }
        // Out-of-band write, breaking the contract on purpose...
        tier.tree().insert(iv(600, 610), 5_000).unwrap();
        // ...then the escape hatch.
        tier.invalidate_all();
        assert_eq!(tier.stats().resident_blocks, 0);
        assert!(tier.intersection(q).unwrap().contains(&5_000));
    }

    #[test]
    fn stab_goes_through_the_tier() {
        let tier = fresh_tier(HotTierConfig::default());
        for i in 0..100 {
            tier.insert(iv(i * 10, i * 10 + 25), i).unwrap();
        }
        for _ in 0..3 {
            assert_eq!(tier.stab(105).unwrap(), tier.tree().stab(105).unwrap());
        }
        assert!(tier.stats().hits >= 1);
    }
}
