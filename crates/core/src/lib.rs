//! # The Relational Interval Tree (RI-tree)
//!
//! A from-scratch Rust reproduction of *Managing Intervals Efficiently in
//! Object-Relational Databases* (Kriegel, Pötke, Seidl; VLDB 2000).
//!
//! The RI-tree manages intervals inside an ordinary relational table
//! `(node, lower, upper, id)` equipped with two composite B+-tree indexes
//! `(node, lower, id)` and `(node, upper, id)` — the DDL of the paper's
//! Figure 2.  The backbone of Edelsbrunner's interval tree is kept
//! **virtual**: four persistent parameters (`offset`, `leftRoot`,
//! `rightRoot`, `minstep`) describe a binary partition of the integer
//! domain that is navigated with pure arithmetic, costing no I/O.
//!
//! Key guarantees reproduced here (Sections 3–4):
//! * O(n/b) disk blocks for n intervals (two index entries per interval,
//!   no redundancy);
//! * O(log_b n) I/Os per insertion or deletion;
//! * O(h·log_b n + r/b) I/Os per intersection query returning r results,
//!   where the backbone height h tracks data-space expansion and
//!   granularity but **not** n;
//! * dynamic expansion of the data space at both ends (Section 3.4);
//! * all 13 Allen topological predicates (Section 4.5);
//! * `now` / `infinity` endpoints for temporal data (Section 4.6).
//!
//! ## Quick start
//!
//! ```
//! use ritree_core::{Interval, RiTree};
//! use ri_relstore::Database;
//! use ri_pagestore::{BufferPool, MemDisk, DEFAULT_PAGE_SIZE};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
//! let db = Arc::new(Database::create(pool).unwrap());
//! let tree = RiTree::create(db, "validity").unwrap();
//!
//! tree.insert(Interval::new(1999, 2004).unwrap(), 100).unwrap();
//! tree.insert(Interval::new(2001, 2009).unwrap(), 200).unwrap();
//!
//! // Which rows were valid during [2002, 2003]?
//! assert_eq!(tree.intersection(Interval::new(2002, 2003).unwrap()).unwrap(),
//!            vec![100, 200]);
//! ```

pub mod allen;
pub mod hot_tier;
pub mod interval;
pub mod skeleton;
pub mod tree;
pub mod vtree;

pub use allen::AllenRelation;
pub use hot_tier::{HotTier, HotTierConfig, HotTierStats};
pub use interval::Interval;
pub use skeleton::SkeletonDirectory;
pub use tree::{
    OpenEnd, RiOptions, RiStorage, RiTree, BULK_BATCH_MIN, FORK_INF, FORK_NOW, UPPER_INF, UPPER_NOW,
};
pub use vtree::{fork_node_fig4, BackboneParams, QueryNodes};

pub use ri_pagestore::{Error, Result};
