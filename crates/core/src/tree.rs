//! The Relational Interval Tree over the relational engine.
//!
//! An [`RiTree`] is exactly the paper's recipe: one relational table
//! `(node, lower, upper, id)` with two composite indexes (Figure 2), the
//! O(1) backbone parameters in the database's data dictionary (Section 5),
//! fork-node maintenance on insert (Figures 5/6), and intersection queries
//! compiled to the two-fold `UNION ALL` plan of Figure 9 / Figure 10.
//!
//! # Latches vs page faults (audit)
//!
//! With the buffer pool's promoted miss path (device reads outside the
//! shard lock), the RI-tree level holds no latch across a fault on any
//! descent: query descents acquire no latches at all (the B-link trees'
//! read paths and scan cursors are fully latch-free — see
//! `ri_btree::tree`; the PR 3 shared tree latch that cursors used to pin
//! is gone), and row/index writes go through the heap's and B-link
//! trees' prefetch-before-latch sections.  The one RI-tree-level latch
//! is the *parameter latch* ([`Database::param_guard`]): it spans
//! in-memory parameter reads plus at most one header-page persist, which
//! may fault.  It is deliberately *not* prefetched — whether the section
//! writes the header at all is decided inside it, and an unconditional
//! prefetch would change the physical access sequence the experiment
//! goldens pin.  Parameter RMWs happen only on data-space expansion
//! (O(log of the data-space growth) events per tree lifetime), so the
//! exposure is negligible and recorded here instead of engineered away.

use crate::interval::Interval;
use crate::vtree::BackboneParams;
use ri_pagestore::{Error, Result};
use ri_relstore::{BoundExpr, Database, ExecStats, IndexDef, Plan, Row, RowId, Table, TableDef};
use std::sync::Arc;

/// Artificial, exclusive `node` value for intervals ending at *infinity*
/// (Section 4.6: "our choice to set fork∞ = MAXINT avoids any modification
/// of the SQL statement").
pub const FORK_INF: i64 = i64::MAX;
/// Artificial, exclusive `node` value for *now*-relative intervals
/// (Section 4.6: fork_now = MAXINT − 1).
pub const FORK_NOW: i64 = i64::MAX - 1;
/// Stored `upper` sentinel for intervals ending at infinity.
pub const UPPER_INF: i64 = i64::MAX;
/// Stored `upper` sentinel for now-relative intervals; the effective upper
/// bound is the query-time `now`.
pub const UPPER_NOW: i64 = i64::MAX - 1;

/// Batch size at or above which [`RiTree::insert_batch`] builds the
/// indexes bottom-up ([`ri_relstore::Table::bulk_insert`]) instead of
/// descending per row — taken only when the target tree is still empty,
/// since the bulk builder installs whole index structures.  Below the
/// threshold (or on a non-empty tree) the batch keeps the concurrent
/// per-row path: small batches gain nothing from sorting and full-fill
/// packing.
pub const BULK_BATCH_MIN: usize = 1024;

/// How an open-ended (temporal) interval terminates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpenEnd {
    /// Valid forever (`upper = ∞`).
    Infinity,
    /// Valid until the current time (`upper = now`), moving as time does.
    Now,
}

/// Storage footprint of an RI-tree (drives the Figure 12 comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RiStorage {
    /// Rows in the base table.
    pub rows: u64,
    /// Entries in `lowerIndex` + `upperIndex` (= 2 per interval).
    pub index_entries: u64,
    /// Pages used by the two indexes.
    pub index_pages: u64,
}

/// The Relational Interval Tree.
///
/// ```
/// use ritree_core::{Interval, RiTree};
/// use ri_relstore::Database;
/// use ri_pagestore::{BufferPool, MemDisk, DEFAULT_PAGE_SIZE};
/// use std::sync::Arc;
///
/// let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
/// let db = Arc::new(Database::create(pool).unwrap());
/// let tree = RiTree::create(Arc::clone(&db), "bookings").unwrap();
/// tree.insert(Interval::new(10, 20).unwrap(), 1).unwrap();
/// tree.insert(Interval::new(15, 40).unwrap(), 2).unwrap();
/// tree.insert(Interval::new(50, 60).unwrap(), 3).unwrap();
/// let hits = tree.intersection(Interval::new(18, 52).unwrap()).unwrap();
/// assert_eq!(hits, vec![1, 2, 3]);
/// let hits = tree.intersection(Interval::new(41, 49).unwrap()).unwrap();
/// assert!(hits.is_empty());
/// ```
pub struct RiTree {
    db: Arc<Database>,
    name: String,
    table_name: String,
    lower_index: String,
    upper_index: String,
    table: Table,
    /// Optional Skeleton Index extension (paper Section 7): a materialized
    /// directory of non-empty backbone nodes used to prune query probes.
    skeleton: Option<crate::skeleton::SkeletonDirectory>,
}

/// Creation options for [`RiTree::create_with_options`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RiOptions {
    /// Enable the Skeleton Index extension (paper Section 7): maintain a
    /// directory of non-empty backbone nodes and use it to drop empty-node
    /// probes from query plans.  Costs one directory probe per insert.
    pub skeleton: bool,
}

impl RiTree {
    /// Creates the relational schema of Figure 2 (table plus `lowerIndex`
    /// and `upperIndex`) and registers the backbone parameters in the data
    /// dictionary.
    pub fn create(db: Arc<Database>, name: &str) -> Result<RiTree> {
        Self::create_with_options(db, name, RiOptions::default())
    }

    /// [`RiTree::create`] with explicit [`RiOptions`].
    pub fn create_with_options(db: Arc<Database>, name: &str, opts: RiOptions) -> Result<RiTree> {
        let table_name = format!("RI_{name}");
        let lower_index = format!("RI_{name}_LOWER");
        let upper_index = format!("RI_{name}_UPPER");
        db.create_table(TableDef {
            name: table_name.clone(),
            columns: vec!["node".into(), "lower".into(), "upper".into(), "id".into()],
        })?;
        // The paper includes `id` in both indexes so intersection queries
        // are answered from the indexes alone (Figure 10: "the attribute id
        // was included in the indexes").
        db.create_index(
            &table_name,
            IndexDef { name: lower_index.clone(), key_cols: vec![0, 1, 3] },
        )?;
        db.create_index(
            &table_name,
            IndexDef { name: upper_index.clone(), key_cols: vec![0, 2, 3] },
        )?;
        let skeleton = if opts.skeleton {
            Some(crate::skeleton::SkeletonDirectory::create(Arc::clone(&db), name)?)
        } else {
            None
        };
        let table = db.table(&table_name)?;
        let tree = RiTree {
            db,
            name: name.to_string(),
            table_name,
            lower_index,
            upper_index,
            table,
            skeleton,
        };
        tree.db.set_param(&tree.param("skeleton"), opts.skeleton as i64)?;
        tree.save_params(&BackboneParams::new())?;
        Ok(tree)
    }

    /// Bulk-loads a new RI-tree from `(interval, id)` pairs.
    ///
    /// The backbone parameters are computed with pure arithmetic over the
    /// whole input first; fork nodes are stable under data-space expansion,
    /// so evaluating them against the *final* parameters yields exactly the
    /// nodes incremental insertion would have produced.  The heap is filled
    /// before the indexes are created, so both composite indexes are built
    /// bottom-up at 90 % fill — the clustered build the paper grants the
    /// bulk-loaded competitors (Section 6.3).
    pub fn bulk_load(
        db: Arc<Database>,
        name: &str,
        opts: RiOptions,
        data: impl IntoIterator<Item = (Interval, i64)>,
    ) -> Result<RiTree> {
        let table_name = format!("RI_{name}");
        let lower_index = format!("RI_{name}_LOWER");
        let upper_index = format!("RI_{name}_UPPER");
        db.create_table(TableDef {
            name: table_name.clone(),
            columns: vec!["node".into(), "lower".into(), "upper".into(), "id".into()],
        })?;

        // Phase 1: backbone parameters (arithmetic only, no I/O).
        let data: Vec<(Interval, i64)> = data.into_iter().collect();
        let mut p = BackboneParams::new();
        let mut min_lower = None::<i64>;
        let mut max_upper = None::<i64>;
        for &(iv, _) in &data {
            if iv.upper >= UPPER_NOW {
                return Err(Error::InvalidArgument(format!(
                    "upper bound {} collides with the temporal sentinels",
                    iv.upper
                )));
            }
            p.prepare_insert(iv.lower, iv.upper);
            min_lower = Some(min_lower.map_or(iv.lower, |v: i64| v.min(iv.lower)));
            max_upper = Some(max_upper.map_or(iv.upper, |v: i64| v.max(iv.upper)));
        }

        // Phase 2: heap rows with final-parameter fork nodes.
        let table = db.table(&table_name)?;
        let mut forks = Vec::with_capacity(data.len());
        for &(iv, id) in &data {
            let node = p.fork_of(iv.lower, iv.upper).expect("offset fixed in phase 1");
            table.insert(&[node, iv.lower, iv.upper, id])?;
            forks.push(node);
        }

        // Phase 3: clustered index builds.
        db.create_index(
            &table_name,
            IndexDef { name: lower_index.clone(), key_cols: vec![0, 1, 3] },
        )?;
        db.create_index(
            &table_name,
            IndexDef { name: upper_index.clone(), key_cols: vec![0, 2, 3] },
        )?;
        let skeleton = if opts.skeleton {
            let dir = crate::skeleton::SkeletonDirectory::create(Arc::clone(&db), name)?;
            forks.sort_unstable();
            forks.dedup();
            for node in forks {
                dir.add(node)?;
            }
            Some(dir)
        } else {
            None
        };

        let table = db.table(&table_name)?;
        let tree = RiTree {
            db,
            name: name.to_string(),
            table_name,
            lower_index,
            upper_index,
            table,
            skeleton,
        };
        tree.db.set_param(&tree.param("skeleton"), opts.skeleton as i64)?;
        tree.save_params(&p)?;
        if let Some(v) = min_lower {
            tree.db.set_param(&tree.param("min_lower"), v)?;
        }
        if let Some(v) = max_upper {
            tree.db.set_param(&tree.param("max_upper"), v)?;
        }
        Ok(tree)
    }

    /// Re-attaches to an RI-tree previously created under `name`,
    /// restoring its options from the data dictionary.
    pub fn open(db: Arc<Database>, name: &str) -> Result<RiTree> {
        let table_name = format!("RI_{name}");
        let lower_index = format!("RI_{name}_LOWER");
        let upper_index = format!("RI_{name}_UPPER");
        let table = db.table(&table_name)?; // errors if absent
        table.index(&lower_index)?;
        table.index(&upper_index)?;
        let has_skeleton = db.get_param(&format!("{name}.skeleton")) == Some(1);
        let skeleton = if has_skeleton {
            Some(crate::skeleton::SkeletonDirectory::open(Arc::clone(&db), name)?)
        } else {
            None
        };
        Ok(RiTree {
            db,
            name: name.to_string(),
            table_name,
            lower_index,
            upper_index,
            table,
            skeleton,
        })
    }

    /// The logical name this tree was created under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying database (for I/O statistics and checkpointing).
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Base table name (`RI_<name>`).
    pub fn table_name(&self) -> &str {
        &self.table_name
    }

    // ------------------------------------------------------------------
    // Parameter dictionary (Section 5)
    // ------------------------------------------------------------------

    fn param(&self, key: &str) -> String {
        format!("{}.{key}", self.name)
    }

    /// Loads the backbone parameters from the data dictionary.
    pub fn load_params(&self) -> Result<BackboneParams> {
        Ok(BackboneParams {
            offset: self.db.get_param(&self.param("offset")),
            left_root: self.db.get_param(&self.param("left_root")).unwrap_or(0),
            right_root: self.db.get_param(&self.param("right_root")).unwrap_or(0),
            minstep2: self.db.get_param(&self.param("minstep2")).unwrap_or(i64::MAX),
        })
    }

    fn save_params(&self, p: &BackboneParams) -> Result<()> {
        let mut entries: Vec<(String, i64)> = vec![
            (self.param("left_root"), p.left_root),
            (self.param("right_root"), p.right_root),
            (self.param("minstep2"), p.minstep2),
        ];
        if let Some(off) = p.offset {
            entries.push((self.param("offset"), off));
        }
        let borrowed: Vec<(&str, i64)> = entries.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        self.db.set_params(&borrowed)
    }

    fn bump_counter(&self, key: &str, delta: i64) -> Result<()> {
        let _guard = self.db.param_guard();
        let k = self.param(key);
        let v = self.db.get_param(&k).unwrap_or(0) + delta;
        self.db.set_param(&k, v)
    }

    fn counter(&self, key: &str) -> i64 {
        self.db.get_param(&self.param(key)).unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Updates (Section 3.3 / 3.4)
    // ------------------------------------------------------------------

    /// Inserts an interval with an application-supplied `id`.
    ///
    /// This is Figure 6 followed by Figure 5: O(height) arithmetic to find
    /// the fork node and maintain the parameters, then a single relational
    /// insert costing O(log_b n) I/Os.
    pub fn insert(&self, iv: Interval, id: i64) -> Result<()> {
        if iv.upper >= UPPER_NOW {
            return Err(Error::InvalidArgument(format!(
                "upper bound {} collides with the temporal sentinels",
                iv.upper
            )));
        }
        let mut p = self.load_params()?;
        let before = p;
        let mut node = p.prepare_insert(iv.lower, iv.upper);
        if p != before {
            // The backbone must grow (or fix its offset): redo the
            // decision under the parameter latch, since a concurrent
            // writer may have expanded the space first.  Fork nodes are
            // stable under data-space expansion, so a node computed
            // against the freshest parameters stays correct even if the
            // space grows again the moment the latch drops.
            let _guard = self.db.param_guard();
            let mut p = self.load_params()?;
            let before = p;
            node = p.prepare_insert(iv.lower, iv.upper);
            if p != before {
                self.save_params(&p)?;
            }
        }
        self.table.insert(&[node, iv.lower, iv.upper, id])?;
        if let Some(dir) = &self.skeleton {
            // The directory's check-then-insert (and the symmetric
            // retire in `delete_exact`) must not interleave, or a query
            // could prune a node that just became non-empty.
            let _guard = self.db.param_guard();
            dir.add(node)?;
        }
        self.track_bounds(iv.lower, Some(iv.upper))
    }

    /// Maintains the `min_lower` / `max_upper` dictionary entries used by
    /// the one-sided Allen queries (*before* / *after*).
    ///
    /// Check-latch-recheck: the unlatched test keeps the common
    /// no-improvement case latch-free, the latched retest makes the
    /// read-modify-write atomic against concurrent writers.
    fn track_bounds(&self, lower: i64, upper: Option<i64>) -> Result<()> {
        let kl = self.param("min_lower");
        if self.db.get_param(&kl).is_none_or(|v| lower < v) {
            let _guard = self.db.param_guard();
            if self.db.get_param(&kl).is_none_or(|v| lower < v) {
                self.db.set_param(&kl, lower)?;
            }
        }
        if let Some(u) = upper {
            let ku = self.param("max_upper");
            if self.db.get_param(&ku).is_none_or(|v| u > v) {
                let _guard = self.db.param_guard();
                if self.db.get_param(&ku).is_none_or(|v| u > v) {
                    self.db.set_param(&ku, u)?;
                }
            }
        }
        Ok(())
    }

    /// Inserts a batch of `(interval, id)` pairs, fanning the row and
    /// index work out over at most `threads` worker threads.
    ///
    /// Equivalent to calling [`RiTree::insert`] once per pair — queries
    /// return the same ids — except that heap row *order* (and therefore
    /// the internal row ids) follows the scheduler under concurrency.
    ///
    /// The backbone parameters are computed for the whole batch up front
    /// under the parameter latch, exactly like [`RiTree::bulk_load`]:
    /// fork nodes are stable under data-space expansion, so evaluating
    /// every interval against the *final* parameters yields the same
    /// nodes incremental insertion would have produced.  The per-row
    /// inserts then scale through the heap's append latch and the
    /// B-link trees' per-node write latches; with `threads <= 1` the
    /// rows are inserted sequentially in input order.
    ///
    /// **Bulk path:** a batch of at least [`BULK_BATCH_MIN`] intervals
    /// into an *empty* tree skips the per-row index descents entirely —
    /// the rows are appended to the heap in input order and each index
    /// is then built bottom-up at full fill in one sequential write
    /// pass (`O(pages)` writes instead of `O(n log n)` descent I/Os;
    /// `threads` is not consulted, the pass is sequential by design).
    /// Queries cannot tell the two paths apart.  Concurrent DML on the
    /// same tree while a bulk-routed batch runs is unsupported, as with
    /// any bulk load.
    ///
    /// ```
    /// use ri_pagestore::{BufferPool, MemDisk, DEFAULT_PAGE_SIZE};
    /// use ri_relstore::Database;
    /// use ritree_core::{Interval, RiTree, BULK_BATCH_MIN};
    /// use std::sync::Arc;
    ///
    /// let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
    /// let db = Arc::new(Database::create(pool).unwrap());
    /// let tree = RiTree::create(db, "t").unwrap();
    ///
    /// // 2,000 intervals into an empty tree: at or above BULK_BATCH_MIN
    /// // the batch routes through the bottom-up bulk builder.
    /// let items: Vec<(Interval, i64)> =
    ///     (0..2000).map(|i| (Interval::new(i, i + 50).unwrap(), i)).collect();
    /// assert!(items.len() >= BULK_BATCH_MIN);
    /// tree.insert_batch(&items, 1).unwrap();
    ///
    /// assert_eq!(tree.count().unwrap(), 2000);
    /// assert!(tree.stab(25).unwrap().contains(&0));
    /// ```
    pub fn insert_batch(&self, items: &[(Interval, i64)], threads: usize) -> Result<()> {
        for &(iv, _) in items {
            if iv.upper >= UPPER_NOW {
                return Err(Error::InvalidArgument(format!(
                    "upper bound {} collides with the temporal sentinels",
                    iv.upper
                )));
            }
        }
        if items.is_empty() {
            return Ok(());
        }
        // Phase 1: backbone parameters, once for the whole batch.
        let forks: Vec<i64> = {
            let _guard = self.db.param_guard();
            let mut p = self.load_params()?;
            let before = p;
            for &(iv, _) in items {
                p.prepare_insert(iv.lower, iv.upper);
            }
            if p != before {
                self.save_params(&p)?;
            }
            items
                .iter()
                .map(|&(iv, _)| p.fork_of(iv.lower, iv.upper).expect("offset fixed in phase 1"))
                .collect()
        };
        // Phase 2: rows and index entries.  Large batches into an empty
        // table take the bulk path — heap rows appended in input order,
        // then every index built bottom-up in one sequential write pass
        // with no per-row descents; everything else fans the per-row
        // inserts out over the worker threads.
        let rows: Vec<[i64; 4]> = items
            .iter()
            .zip(&forks)
            .map(|(&(iv, id), &node)| [node, iv.lower, iv.upper, id])
            .collect();
        if items.len() >= BULK_BATCH_MIN && self.table.row_count()? == 0 {
            self.table.bulk_insert(&rows)?;
        } else {
            ri_relstore::fan_out(&rows, threads, |row| self.table.insert(row).map(|_| ()))
                .into_iter()
                .collect::<Result<()>>()?;
        }
        // Phase 3: skeleton directory and bound bookkeeping, once.
        if let Some(dir) = &self.skeleton {
            let _guard = self.db.param_guard();
            let mut nodes = forks;
            nodes.sort_unstable();
            nodes.dedup();
            for node in nodes {
                dir.add(node)?;
            }
        }
        let min_lower = items.iter().map(|&(iv, _)| iv.lower).min().expect("non-empty batch");
        let max_upper = items.iter().map(|&(iv, _)| iv.upper).max().expect("non-empty batch");
        self.track_bounds(min_lower, Some(max_upper))
    }

    /// Inserts an open-ended temporal interval `[lower, now]` or
    /// `[lower, ∞)` (Section 4.6).
    ///
    /// Open intervals are registered at the artificial fork nodes
    /// [`FORK_NOW`] / [`FORK_INF`], outside the virtual backbone; no
    /// backbone parameter changes.
    pub fn insert_open(&self, lower: i64, end: OpenEnd, id: i64) -> Result<()> {
        let (node, upper, counter) = match end {
            OpenEnd::Infinity => (FORK_INF, UPPER_INF, "n_inf"),
            OpenEnd::Now => (FORK_NOW, UPPER_NOW, "n_now"),
        };
        self.table.insert(&[node, lower, upper, id])?;
        self.bump_counter(counter, 1)?;
        self.track_bounds(lower, None)
    }

    /// Deletes the interval `(iv, id)`; returns `false` if not present.
    ///
    /// The fork node is recomputed from the current parameters — fork nodes
    /// are stable under data-space expansion, so this finds the row
    /// regardless of how the tree grew since the insert.
    pub fn delete(&self, iv: Interval, id: i64) -> Result<bool> {
        let p = self.load_params()?;
        let Some(node) = p.fork_of(iv.lower, iv.upper) else {
            return Ok(false);
        };
        self.delete_exact(node, iv.lower, Some(iv.upper), id)
    }

    /// Deletes an open-ended interval inserted with [`RiTree::insert_open`].
    pub fn delete_open(&self, lower: i64, end: OpenEnd, id: i64) -> Result<bool> {
        let (node, counter) = match end {
            OpenEnd::Infinity => (FORK_INF, "n_inf"),
            OpenEnd::Now => (FORK_NOW, "n_now"),
        };
        let deleted = self.delete_exact(node, lower, None, id)?;
        if deleted {
            self.bump_counter(counter, -1)?;
        }
        Ok(deleted)
    }

    fn delete_exact(&self, node: i64, lower: i64, upper: Option<i64>, id: i64) -> Result<bool> {
        let index = self.table.index(&self.lower_index)?;
        let key = [node, lower, id];
        // Locate the victim first, then delete.  Since the B-link
        // refactor a cursor is latch-free, so deleting under a live
        // cursor would be legal too — but scoping the cursor keeps the
        // probe's page accesses cleanly separated from the delete's in
        // the deterministic I/O traces, and costs nothing.
        let target = {
            let mut found = None;
            for entry in index.scan_range(&key, &key) {
                let entry = entry?;
                let rid = RowId::from_raw(entry.payload);
                let Some(row) = self.table.fetch(rid)? else {
                    continue;
                };
                if upper.is_none_or(|u| row[2] == u) {
                    found = Some(rid);
                    break;
                }
            }
            found
        };
        let deleted = match target {
            Some(rid) => self.table.delete(rid)?,
            None => false,
        };
        if deleted {
            if let Some(dir) = &self.skeleton {
                // If the node just lost its last interval, retire it from
                // the directory (atomically against concurrent adds).
                let _guard = self.db.param_guard();
                let index = self.table.index(&self.lower_index)?;
                let still_used = index
                    .scan_range(&[node, i64::MIN, i64::MIN], &[node, i64::MAX, i64::MAX])
                    .next()
                    .is_some();
                if !still_used {
                    dir.remove(node)?;
                }
            }
        }
        Ok(deleted)
    }

    /// Number of stored intervals (including open-ended ones).
    pub fn count(&self) -> Result<u64> {
        self.table.row_count()
    }

    /// Backbone height per the Section 3.5 analysis.
    pub fn height(&self) -> Result<u32> {
        Ok(self.load_params()?.height())
    }

    /// Storage footprint (Figure 12's metric: number of index entries).
    pub fn storage(&self) -> Result<RiStorage> {
        let lower = self.db.index_stats(&self.table_name, &self.lower_index)?;
        let upper = self.db.index_stats(&self.table_name, &self.upper_index)?;
        Ok(RiStorage {
            rows: self.table.row_count()?,
            index_entries: lower.entries + upper.entries,
            index_pages: lower.pages + upper.pages,
        })
    }

    // ------------------------------------------------------------------
    // Queries (Section 4)
    // ------------------------------------------------------------------

    /// Compiles the intersection query `q` into the two-fold plan of
    /// Figure 9: `leftNodes ⋈ upperIndex UNION ALL rightNodes ⋈ lowerIndex`.
    ///
    /// `now` resolves now-relative intervals (Section 4.6); pass anything
    /// when the tree holds none.
    pub fn intersection_plan(&self, q: Interval, now: i64) -> Result<Plan> {
        let p = self.load_params()?;
        let mut nodes = p.query_nodes(q.lower, q.upper);
        if let Some(dir) = &self.skeleton {
            // Skeleton Index extension: drop transient entries whose node
            // holds no intervals (the final `left` element is the BETWEEN
            // range pair and always stays — it is one scan regardless).
            let pair = nodes.left.pop();
            let singles: Vec<i64> = nodes.left.iter().map(|&(w, _)| w).collect();
            let (left, right) = Self::skeleton_filter(dir, singles, nodes.right)?;
            nodes.left = left.into_iter().map(|w| (w, w)).collect();
            nodes.left.extend(pair);
            nodes.right = right;
        }
        let left_rows: Vec<Row> = nodes.left.iter().map(|&(a, b)| vec![a, b]).collect();
        let mut right_rows: Vec<Row> = nodes.right.iter().map(|&w| vec![w]).collect();
        // Temporal sentinels: fork∞ always participates; fork_now exactly
        // if the query begins in the past (Section 4.6).  To keep the I/O
        // counts of the non-temporal experiments exact, the sentinels are
        // only added when open intervals actually exist.
        if self.counter("n_inf") > 0 {
            right_rows.push(vec![FORK_INF]);
        }
        if self.counter("n_now") > 0 && q.lower <= now {
            right_rows.push(vec![FORK_NOW]);
        }
        Ok(Plan::UnionAll(vec![
            Plan::NestedLoops {
                outer: Box::new(Plan::CollectionIterator {
                    name: "LEFT_NODES".into(),
                    rows: left_rows,
                }),
                // i.node BETWEEN left.min AND left.max AND i.upper >= :lower
                inner: Box::new(Plan::IndexRangeScan {
                    table: self.table_name.clone(),
                    index: self.upper_index.clone(),
                    lo: vec![BoundExpr::Outer(0), BoundExpr::Const(q.lower), BoundExpr::NegInf],
                    hi: vec![BoundExpr::Outer(1), BoundExpr::PosInf, BoundExpr::PosInf],
                }),
            },
            Plan::NestedLoops {
                outer: Box::new(Plan::CollectionIterator {
                    name: "RIGHT_NODES".into(),
                    rows: right_rows,
                }),
                // i.node = right.node AND i.lower <= :upper
                inner: Box::new(Plan::IndexRangeScan {
                    table: self.table_name.clone(),
                    index: self.lower_index.clone(),
                    lo: vec![BoundExpr::Outer(0), BoundExpr::NegInf, BoundExpr::NegInf],
                    hi: vec![BoundExpr::Outer(0), BoundExpr::Const(q.upper), BoundExpr::PosInf],
                }),
            },
        ]))
    }

    /// The *preliminary* three-fold plan of Figure 8, before the
    /// Section 4.3 transformation: exact-node branches for `leftNodes` and
    /// `rightNodes` plus a separate BETWEEN branch on the covered node
    /// range.  Produces the same (duplicate-free) result as
    /// [`RiTree::intersection_plan`]; kept as an ablation target for the
    /// two-fold optimization.
    pub fn intersection_plan_fig8(&self, q: Interval, now: i64) -> Result<Plan> {
        let p = self.load_params()?;
        let nodes = p.query_nodes(q.lower, q.upper);
        // Strip the Section 4.3 range pair back off: left side becomes the
        // exact node list again, the BETWEEN condition becomes its own
        // branch.
        let left_rows: Vec<Row> =
            nodes.left.iter().filter(|(a, b)| a == b).map(|&(w, _)| vec![w]).collect();
        let mut right_rows: Vec<Row> = nodes.right.iter().map(|&w| vec![w]).collect();
        if self.counter("n_inf") > 0 {
            right_rows.push(vec![FORK_INF]);
        }
        if self.counter("n_now") > 0 && q.lower <= now {
            right_rows.push(vec![FORK_NOW]);
        }
        let mut branches = vec![
            Plan::NestedLoops {
                outer: Box::new(Plan::CollectionIterator {
                    name: "LEFT_NODES".into(),
                    rows: left_rows,
                }),
                inner: Box::new(Plan::IndexRangeScan {
                    table: self.table_name.clone(),
                    index: self.upper_index.clone(),
                    lo: vec![BoundExpr::Outer(0), BoundExpr::Const(q.lower), BoundExpr::NegInf],
                    hi: vec![BoundExpr::Outer(0), BoundExpr::PosInf, BoundExpr::PosInf],
                }),
            },
            Plan::NestedLoops {
                outer: Box::new(Plan::CollectionIterator {
                    name: "RIGHT_NODES".into(),
                    rows: right_rows,
                }),
                inner: Box::new(Plan::IndexRangeScan {
                    table: self.table_name.clone(),
                    index: self.lower_index.clone(),
                    lo: vec![BoundExpr::Outer(0), BoundExpr::NegInf, BoundExpr::NegInf],
                    hi: vec![BoundExpr::Outer(0), BoundExpr::Const(q.upper), BoundExpr::PosInf],
                }),
            },
        ];
        if let (Some(l), Some(u)) = (p.shift(q.lower), p.shift(q.upper)) {
            // i.node BETWEEN :lower − offset AND :upper − offset.
            branches.push(Plan::IndexRangeScan {
                table: self.table_name.clone(),
                index: self.lower_index.clone(),
                lo: vec![BoundExpr::Const(l), BoundExpr::NegInf, BoundExpr::NegInf],
                hi: vec![BoundExpr::Const(u), BoundExpr::PosInf, BoundExpr::PosInf],
            });
        }
        Ok(Plan::UnionAll(branches))
    }

    /// Intersection plan with the Section 3.4 granularity pruning
    /// disabled (`minstep` treated as 1): descents always reach the leaf
    /// level.  Ablation target for the `minstep` optimization.
    pub fn intersection_plan_unpruned(&self, q: Interval, now: i64) -> Result<Plan> {
        let mut p = self.load_params()?;
        if p.offset.is_some() {
            p.minstep2 = 1;
        }
        let nodes = p.query_nodes(q.lower, q.upper);
        let left_rows: Vec<Row> = nodes.left.iter().map(|&(a, b)| vec![a, b]).collect();
        let mut right_rows: Vec<Row> = nodes.right.iter().map(|&w| vec![w]).collect();
        if self.counter("n_inf") > 0 {
            right_rows.push(vec![FORK_INF]);
        }
        if self.counter("n_now") > 0 && q.lower <= now {
            right_rows.push(vec![FORK_NOW]);
        }
        Ok(Plan::UnionAll(vec![
            Plan::NestedLoops {
                outer: Box::new(Plan::CollectionIterator {
                    name: "LEFT_NODES".into(),
                    rows: left_rows,
                }),
                inner: Box::new(Plan::IndexRangeScan {
                    table: self.table_name.clone(),
                    index: self.upper_index.clone(),
                    lo: vec![BoundExpr::Outer(0), BoundExpr::Const(q.lower), BoundExpr::NegInf],
                    hi: vec![BoundExpr::Outer(1), BoundExpr::PosInf, BoundExpr::PosInf],
                }),
            },
            Plan::NestedLoops {
                outer: Box::new(Plan::CollectionIterator {
                    name: "RIGHT_NODES".into(),
                    rows: right_rows,
                }),
                inner: Box::new(Plan::IndexRangeScan {
                    table: self.table_name.clone(),
                    index: self.lower_index.clone(),
                    lo: vec![BoundExpr::Outer(0), BoundExpr::NegInf, BoundExpr::NegInf],
                    hi: vec![BoundExpr::Outer(0), BoundExpr::Const(q.upper), BoundExpr::PosInf],
                }),
            },
        ]))
    }

    /// Extracts the `id` column (position 2 in every id-plan's output
    /// rows: `node, lower-or-upper, id, rowid`) sorted ascending — the one
    /// place that knows the result-row layout.
    fn rows_to_ids(rows: &[Row]) -> Vec<i64> {
        let mut ids: Vec<i64> = rows.iter().map(|r| r[2]).collect();
        ids.sort_unstable();
        ids
    }

    /// Executes an arbitrary plan built by one of the plan constructors and
    /// extracts sorted result ids (used by the ablation benchmarks).
    pub fn execute_id_plan(&self, plan: &Plan) -> Result<(Vec<i64>, ExecStats)> {
        let mut stats = ExecStats::default();
        let rows = self.db.execute(plan, &mut stats)?;
        Ok((Self::rows_to_ids(&rows), stats))
    }

    /// Reports the ids of all stored intervals intersecting `q`, treating
    /// now-relative intervals as ending at `now`.
    ///
    /// Results are distinct by construction (the paper's Section 4.2: the
    /// three conditions address disjoint interval sets) and returned in
    /// ascending id order for deterministic comparisons.
    pub fn intersection_at(&self, q: Interval, now: i64) -> Result<Vec<i64>> {
        Ok(self.intersection_with_stats(q, now)?.0)
    }

    /// Like [`RiTree::intersection_at`] with `now = UPPER_NOW − 1`, i.e.
    /// now-relative intervals are always considered current.
    pub fn intersection(&self, q: Interval) -> Result<Vec<i64>> {
        self.intersection_at(q, UPPER_NOW - 1)
    }

    /// Intersection query returning executor statistics alongside the ids.
    pub fn intersection_with_stats(&self, q: Interval, now: i64) -> Result<(Vec<i64>, ExecStats)> {
        let plan = self.intersection_plan(q, now)?;
        let mut stats = ExecStats::default();
        let rows = self.db.execute(&plan, &mut stats)?;
        let ids = Self::rows_to_ids(&rows);
        debug_assert!(
            ids.windows(2).all(|w| w[0] != w[1]),
            "intersection branches must be disjoint (Section 4.2)"
        );
        Ok((ids, stats))
    }

    /// Stabbing (point) query: all intervals containing `p` — "supporting
    /// point queries as efficient as interval queries" (Section 4.1).
    pub fn stab(&self, p: i64) -> Result<Vec<i64>> {
        self.intersection(Interval::point(p))
    }

    /// Answers a batch of intersection queries concurrently, fanning the
    /// batch over at most `threads` worker threads via
    /// [`Database::execute_parallel`].
    ///
    /// Results are returned in query order and, on a quiescent tree, are
    /// identical to calling [`RiTree::intersection`] once per query: plan
    /// compilation is deterministic and the buffer pool's lock striping
    /// makes concurrent descents safe.  Concurrent writers are *safe*
    /// (the B+-trees latch internally since PR 3) but make results
    /// schedule-dependent, as with any query racing DML.
    pub fn intersection_batch(
        &self,
        queries: &[Interval],
        threads: usize,
    ) -> Result<Vec<Vec<i64>>> {
        self.intersection_batch_at(queries, UPPER_NOW - 1, threads)
    }

    /// [`RiTree::intersection_batch`] with an explicit `now` for
    /// now-relative intervals (Section 4.6).
    pub fn intersection_batch_at(
        &self,
        queries: &[Interval],
        now: i64,
        threads: usize,
    ) -> Result<Vec<Vec<i64>>> {
        let plans = queries
            .iter()
            .map(|&q| self.intersection_plan(q, now))
            .collect::<Result<Vec<Plan>>>()?;
        let results = self.db.execute_parallel(&plans, threads)?;
        Ok(results.into_iter().map(|(rows, _)| Self::rows_to_ids(&rows)).collect())
    }

    /// Renders the Figure 10 execution plan for `q`.
    pub fn explain(&self, q: Interval) -> Result<String> {
        Ok(ri_relstore::explain::explain(&self.intersection_plan(q, UPPER_NOW - 1)?))
    }

    /// Fetches `(interval, id)` rows for candidate result rows; used by the
    /// Allen-relation queries to apply exact predicates.
    pub(crate) fn fetch_bounds(&self, rows: &[Row], now: i64) -> Result<Vec<(Interval, i64)>> {
        let mut out = Vec::with_capacity(rows.len());
        for r in rows {
            let rid = RowId::from_raw(r[3] as u64);
            let Some(full) = self.table.fetch(rid)? else {
                continue;
            };
            let upper = match full[2] {
                UPPER_INF => i64::MAX,
                UPPER_NOW => now,
                u => u,
            };
            if upper < full[1] {
                // A now-interval whose start lies in the future of `now`
                // is not yet valid.
                continue;
            }
            out.push((Interval { lower: full[1], upper }, full[3]));
        }
        Ok(out)
    }

    /// Executes an intersection plan and returns the raw result rows
    /// (key columns + rowid), for callers that post-process candidates.
    pub(crate) fn intersection_rows(&self, q: Interval, now: i64) -> Result<Vec<Row>> {
        let plan = self.intersection_plan(q, now)?;
        let mut stats = ExecStats::default();
        self.db.execute(&plan, &mut stats)
    }

    /// Index-only bulk fetch of every *closed* stored interval
    /// intersecting `q`, **with bounds**: scans the full node partitions
    /// along the query paths in *both* composite indexes and joins them
    /// on `(node, id)` — each table row has one entry per index at the
    /// same `node`, so `(lower, upper)` reconstructs from a handful of
    /// sequential leaf scans instead of one random heap probe per
    /// candidate ([`RiTree::fetch_bounds`]'s cost).  This is the hot
    /// tier's block-admission path, where the fetch spans whole cache
    /// blocks and heap-probe amplification would dwarf the reads the
    /// tier exists to save.
    ///
    /// The scans drop the plan's bound filters (whole partitions are
    /// read, then filtered exactly), which is correct because the
    /// left-path, covered and right-path node sets are disjoint — the
    /// same Section 4.2 argument that makes the id plan duplicate-free.
    /// Open-ended intervals are skipped (callers bypass the tier while
    /// any are stored), and ids must be distinct, as everywhere on the
    /// query path.
    pub(crate) fn span_snapshot(&self, q: Interval) -> Result<Vec<(Interval, i64)>> {
        let p = self.load_params()?;
        let nodes = p.query_nodes(q.lower, q.upper);
        let mut ranges: Vec<Row> = nodes.left.iter().map(|&(a, b)| vec![a, b]).collect();
        ranges.extend(nodes.right.iter().map(|&w| vec![w, w]));
        let scan = |index: &str| -> Result<Vec<Row>> {
            let plan = Plan::NestedLoops {
                outer: Box::new(Plan::CollectionIterator {
                    name: "SPAN_NODES".into(),
                    rows: ranges.clone(),
                }),
                inner: Box::new(Plan::IndexRangeScan {
                    table: self.table_name.clone(),
                    index: index.to_string(),
                    lo: vec![BoundExpr::Outer(0), BoundExpr::NegInf, BoundExpr::NegInf],
                    hi: vec![BoundExpr::Outer(1), BoundExpr::PosInf, BoundExpr::PosInf],
                }),
            };
            self.db.execute(&plan, &mut ExecStats::default())
        };
        let lowers = scan(&self.lower_index)?;
        let uppers = scan(&self.upper_index)?;
        let mut upper_of: std::collections::HashMap<(i64, i64), i64> =
            std::collections::HashMap::with_capacity(uppers.len());
        for r in &uppers {
            upper_of.insert((r[0], r[2]), r[1]);
        }
        let mut out = Vec::with_capacity(lowers.len());
        for r in &lowers {
            let Some(&upper) = upper_of.get(&(r[0], r[2])) else { continue };
            if upper >= UPPER_NOW {
                continue;
            }
            if r[1] <= q.upper && q.lower <= upper {
                out.push((Interval { lower: r[1], upper }, r[2]));
            }
        }
        Ok(out)
    }

    /// Whether any open-ended (`now`/∞) intervals are currently stored.
    pub fn has_open_intervals(&self) -> bool {
        self.counter("n_inf") > 0 || self.counter("n_now") > 0
    }

    /// Smallest stored lower bound (tracked for the one-sided Allen
    /// queries); `None` while empty.
    pub fn min_lower(&self) -> Option<i64> {
        self.db.get_param(&self.param("min_lower"))
    }

    /// Largest stored finite upper bound; `None` while empty.
    pub fn max_upper(&self) -> Option<i64> {
        self.db.get_param(&self.param("max_upper"))
    }
}

impl ri_relstore::IntervalAccessMethod for RiTree {
    fn method_name(&self) -> &'static str {
        "RI-tree"
    }

    fn am_insert(&self, lower: i64, upper: i64, id: i64) -> Result<()> {
        self.insert(Interval::new(lower, upper)?, id)
    }

    fn am_delete(&self, lower: i64, upper: i64, id: i64) -> Result<bool> {
        self.delete(Interval::new(lower, upper)?, id)
    }

    fn am_intersection(&self, lower: i64, upper: i64) -> Result<Vec<i64>> {
        self.intersection(Interval::new(lower, upper)?)
    }

    fn am_intersection_with_stats(
        &self,
        lower: i64,
        upper: i64,
    ) -> Result<(Vec<i64>, ri_relstore::ExecStats)> {
        self.intersection_with_stats(Interval::new(lower, upper)?, UPPER_NOW - 1)
    }

    fn am_index_entries(&self) -> Result<u64> {
        Ok(self.storage()?.index_entries)
    }

    fn am_count(&self) -> Result<u64> {
        self.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk, DEFAULT_PAGE_SIZE};

    fn fresh() -> (Arc<Database>, RiTree) {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::with_capacity(200),
        ));
        let db = Arc::new(Database::create(pool).unwrap());
        let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
        (db, tree)
    }

    #[test]
    fn quickstart_roundtrip() {
        let (_db, tree) = fresh();
        tree.insert(Interval::new(10, 20).unwrap(), 1).unwrap();
        tree.insert(Interval::new(15, 40).unwrap(), 2).unwrap();
        tree.insert(Interval::new(50, 60).unwrap(), 3).unwrap();
        assert_eq!(tree.count().unwrap(), 3);
        assert_eq!(tree.intersection(Interval::new(18, 52).unwrap()).unwrap(), vec![1, 2, 3]);
        assert_eq!(tree.intersection(Interval::new(41, 49).unwrap()).unwrap(), Vec::<i64>::new());
        assert_eq!(tree.stab(12).unwrap(), vec![1]);
        assert_eq!(tree.stab(20).unwrap(), vec![1, 2], "closed bounds intersect");
    }

    #[test]
    fn batch_intersection_matches_single_queries() {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::sharded(200, 4),
        ));
        let db = Arc::new(Database::create(pool).unwrap());
        let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
        for id in 0..1500i64 {
            let l = (id * 37) % 40_000;
            tree.insert(Interval::new(l, l + 600).unwrap(), id).unwrap();
        }
        let queries: Vec<Interval> =
            (0..16).map(|i| Interval::new(i * 2500, i * 2500 + 900).unwrap()).collect();
        let singles: Vec<Vec<i64>> =
            queries.iter().map(|&q| tree.intersection(q).unwrap()).collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                tree.intersection_batch(&queries, threads).unwrap(),
                singles,
                "batch at {threads} threads diverged from single queries"
            );
        }
    }

    #[test]
    fn insert_batch_matches_sequential_inserts() {
        let mk = |shards| {
            let pool = Arc::new(BufferPool::new(
                MemDisk::new(DEFAULT_PAGE_SIZE),
                BufferPoolConfig::sharded(256, shards),
            ));
            let db = Arc::new(Database::create(pool).unwrap());
            RiTree::create(db, "t").unwrap()
        };
        let data: Vec<(Interval, i64)> = (0..2000i64)
            .map(|id| {
                let l = (id * 131) % 50_000 - 10_000;
                (Interval::new(l, l + 400 + (id % 37) * 11).unwrap(), id)
            })
            .collect();
        let sequential = mk(1);
        for &(iv, id) in &data {
            sequential.insert(iv, id).unwrap();
        }
        for threads in [1, 4] {
            let batched = mk(4);
            batched.insert_batch(&data, threads).unwrap();
            assert_eq!(batched.count().unwrap(), sequential.count().unwrap());
            assert_eq!(batched.load_params().unwrap(), sequential.load_params().unwrap());
            assert_eq!(batched.min_lower(), sequential.min_lower());
            assert_eq!(batched.max_upper(), sequential.max_upper());
            for q in [(-12_000i64, 60_000i64), (0, 500), (25_000, 25_100), (49_999, 49_999)] {
                let q = Interval::new(q.0, q.1).unwrap();
                assert_eq!(
                    batched.intersection(q).unwrap(),
                    sequential.intersection(q).unwrap(),
                    "{q} at {threads} threads"
                );
            }
            // Batched trees support deletes like any other.
            let (iv, id) = data[777];
            assert!(batched.delete(iv, id).unwrap());
            assert!(!batched.delete(iv, id).unwrap());
        }
    }

    #[test]
    fn large_batches_into_an_empty_tree_route_through_the_bulk_builder() {
        use ri_btree::layout::{internal_capacity, leaf_capacity};
        use ri_btree::predicted_pages;
        let data: Vec<(Interval, i64)> = (0..1500i64)
            .map(|id| {
                let l = (id * 97) % 60_000;
                (Interval::new(l, l + 300 + (id % 23) * 7).unwrap(), id)
            })
            .collect();
        assert!(data.len() >= BULK_BATCH_MIN);
        let queries = [(0i64, 500i64), (15_000, 15_900), (30_000, 61_000), (59_999, 59_999)];

        // Empty tree + large batch: the bulk route.  Both indexes are
        // arity 3 ((node, lower, id) / (node, upper, id)), so the proof
        // that no per-key descents built them is page-count exactness —
        // a descent-built tree splits at half fill and cannot reach the
        // builder's fill-1.0 page count.
        let (_db, bulk) = fresh();
        bulk.insert_batch(&data, 1).unwrap();
        let lc = leaf_capacity(DEFAULT_PAGE_SIZE, 3);
        let ic = internal_capacity(DEFAULT_PAGE_SIZE, 3);
        let per_index = predicted_pages(data.len() as u64, lc, ic);
        assert_eq!(
            bulk.storage().unwrap().index_pages,
            2 * per_index,
            "bulk-routed batch must build both indexes at exactly the predicted page count"
        );

        // A non-empty table refuses the bulk route and falls back to
        // per-row descents: same answers, looser packing.
        let (_db2, seeded) = fresh();
        seeded.insert(Interval::new(5, 10).unwrap(), 9_999).unwrap();
        seeded.insert_batch(&data, 1).unwrap();
        assert!(
            seeded.storage().unwrap().index_pages > 2 * per_index,
            "descent fallback splits at half fill, so it must use more pages"
        );

        let (_db3, sequential) = fresh();
        sequential.insert(Interval::new(5, 10).unwrap(), 9_999).unwrap();
        for &(iv, id) in &data {
            sequential.insert(iv, id).unwrap();
        }
        for (l, u) in queries {
            let q = Interval::new(l, u).unwrap();
            let expected = sequential.intersection(q).unwrap();
            assert_eq!(seeded.intersection(q).unwrap(), expected, "fallback {q}");
            let mut without_seed = expected.clone();
            without_seed.retain(|&id| id != 9_999);
            assert_eq!(bulk.intersection(q).unwrap(), without_seed, "bulk {q}");
        }
    }

    #[test]
    fn matches_naive_oracle_on_pseudorandom_data() {
        let (_db, tree) = fresh();
        let mut data: Vec<(Interval, i64)> = Vec::new();
        let mut x = 0xDEADBEEFu64;
        for id in 0..800 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let l = (x % 10_000) as i64;
            let len = ((x >> 40) % 500) as i64;
            let iv = Interval::new(l, l + len).unwrap();
            tree.insert(iv, id).unwrap();
            data.push((iv, id));
        }
        for qi in 0..50 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let ql = (x % 11_000) as i64 - 500;
            let qlen = ((x >> 33) % 800) as i64;
            let q = Interval::new(ql, ql + qlen).unwrap();
            let got = tree.intersection(q).unwrap();
            let mut want: Vec<i64> =
                data.iter().filter(|(iv, _)| iv.intersects(&q)).map(|&(_, id)| id).collect();
            want.sort_unstable();
            assert_eq!(got, want, "query {qi}: {q}");
        }
    }

    #[test]
    fn delete_removes_exactly_one_row() {
        let (_db, tree) = fresh();
        let iv = Interval::new(5, 9).unwrap();
        tree.insert(iv, 1).unwrap();
        tree.insert(iv, 2).unwrap(); // same bounds, different id
        assert!(tree.delete(iv, 1).unwrap());
        assert!(!tree.delete(iv, 1).unwrap(), "double delete reports false");
        assert_eq!(tree.intersection(iv).unwrap(), vec![2]);
        assert_eq!(tree.count().unwrap(), 1);
    }

    #[test]
    fn delete_after_data_space_expansion() {
        let (_db, tree) = fresh();
        let early = Interval::new(3, 4).unwrap();
        tree.insert(early, 1).unwrap();
        // Expand the space far beyond the original root.
        tree.insert(Interval::new(1 << 20, (1 << 20) + 5).unwrap(), 2).unwrap();
        tree.insert(Interval::new(-5000, -4000).unwrap(), 3).unwrap();
        assert!(tree.delete(early, 1).unwrap(), "fork must be stable under expansion");
        assert_eq!(tree.intersection(Interval::new(0, 10).unwrap()).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn negative_bounds_and_late_left_expansion() {
        let (_db, tree) = fresh();
        tree.insert(Interval::new(1000, 1100).unwrap(), 1).unwrap();
        tree.insert(Interval::new(-800, -700).unwrap(), 2).unwrap();
        tree.insert(Interval::new(-100, 1500).unwrap(), 3).unwrap();
        assert_eq!(tree.intersection(Interval::new(-750, -720).unwrap()).unwrap(), vec![2]);
        assert_eq!(tree.intersection(Interval::new(-1000, 2000).unwrap()).unwrap(), vec![1, 2, 3]);
        assert_eq!(tree.intersection(Interval::new(-699, 999).unwrap()).unwrap(), vec![3]);
    }

    #[test]
    fn points_as_degenerate_intervals() {
        let (_db, tree) = fresh();
        for p in 0..100 {
            tree.insert(Interval::point(p * 2), p).unwrap();
        }
        assert_eq!(tree.intersection(Interval::new(10, 14).unwrap()).unwrap(), vec![5, 6, 7]);
        assert_eq!(tree.stab(11).unwrap(), Vec::<i64>::new());
        assert_eq!(tree.stab(12).unwrap(), vec![6]);
    }

    #[test]
    fn empty_tree_queries() {
        let (_db, tree) = fresh();
        assert_eq!(tree.intersection(Interval::new(0, 100).unwrap()).unwrap(), Vec::<i64>::new());
        assert_eq!(tree.count().unwrap(), 0);
        assert_eq!(tree.height().unwrap(), 0);
    }

    #[test]
    fn open_infinity_intervals() {
        let (_db, tree) = fresh();
        tree.insert(Interval::new(0, 10).unwrap(), 1).unwrap();
        tree.insert_open(100, OpenEnd::Infinity, 2).unwrap();
        // Intersects any query at or after its start.
        assert_eq!(tree.intersection(Interval::new(500, 600).unwrap()).unwrap(), vec![2]);
        assert_eq!(tree.intersection(Interval::new(0, 99).unwrap()).unwrap(), vec![1]);
        assert_eq!(tree.intersection(Interval::new(0, 100).unwrap()).unwrap(), vec![1, 2]);
        assert!(tree.delete_open(100, OpenEnd::Infinity, 2).unwrap());
        assert_eq!(tree.intersection(Interval::new(500, 600).unwrap()).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn open_now_intervals_follow_query_time() {
        let (_db, tree) = fresh();
        tree.insert_open(100, OpenEnd::Now, 7).unwrap();
        // now = 150: the interval is [100, 150].
        assert_eq!(tree.intersection_at(Interval::new(120, 130).unwrap(), 150).unwrap(), vec![7]);
        assert_eq!(
            tree.intersection_at(Interval::new(160, 170).unwrap(), 150).unwrap(),
            Vec::<i64>::new(),
            "query entirely after now must miss"
        );
        // now = 165: the same interval now reaches the query.
        assert_eq!(tree.intersection_at(Interval::new(160, 170).unwrap(), 165).unwrap(), vec![7]);
        // A query before the start never matches.
        assert_eq!(
            tree.intersection_at(Interval::new(0, 99).unwrap(), 150).unwrap(),
            Vec::<i64>::new()
        );
    }

    #[test]
    fn sentinel_collision_rejected() {
        let (_db, tree) = fresh();
        assert!(tree.insert(Interval::new(0, i64::MAX - 1).unwrap(), 1).is_err());
    }

    #[test]
    fn reopen_preserves_everything() {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::with_capacity(200),
        ));
        let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
        {
            let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
            for i in 0..100 {
                tree.insert(Interval::new(i * 10, i * 10 + 25).unwrap(), i).unwrap();
            }
        }
        let tree = RiTree::open(Arc::clone(&db), "t").unwrap();
        assert_eq!(tree.count().unwrap(), 100);
        let hits = tree.intersection(Interval::new(95, 105).unwrap()).unwrap();
        // Intervals [i·10, i·10 + 25] intersect [95, 105] for i in 7..=10.
        assert_eq!(hits, vec![7, 8, 9, 10]);
        assert!(RiTree::open(db, "missing").is_err());
    }

    #[test]
    fn explain_matches_figure_10() {
        let (_db, tree) = fresh();
        tree.insert(Interval::new(0, 100).unwrap(), 1).unwrap();
        let text = tree.explain(Interval::new(10, 20).unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "SELECT STATEMENT");
        assert_eq!(lines[1], "  UNION-ALL");
        assert_eq!(lines[2], "    NESTED LOOPS");
        assert!(lines[3].trim_start().starts_with("COLLECTION ITERATOR LEFT_NODES"));
        assert!(lines[4].trim_start().starts_with("INDEX RANGE SCAN RI_t_UPPER"));
        assert_eq!(lines[5], "    NESTED LOOPS");
        assert!(lines[6].trim_start().starts_with("COLLECTION ITERATOR RIGHT_NODES"));
        assert!(lines[7].trim_start().starts_with("INDEX RANGE SCAN RI_t_LOWER"));
    }

    #[test]
    fn bulk_load_equals_incremental() {
        let mk_db = || {
            let pool = Arc::new(BufferPool::new(
                MemDisk::new(DEFAULT_PAGE_SIZE),
                BufferPoolConfig::with_capacity(200),
            ));
            Arc::new(Database::create(pool).unwrap())
        };
        let mut data = Vec::new();
        let mut x = 0x60_0Du64;
        for id in 0..3000i64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let l = (x % 200_000) as i64 - 50_000; // negatives included
            let len = ((x >> 40) % 3000) as i64;
            data.push((Interval::new(l, l + len).unwrap(), id));
        }
        let bulk = RiTree::bulk_load(mk_db(), "t", RiOptions::default(), data.clone()).unwrap();
        let incr = RiTree::create(mk_db(), "t").unwrap();
        for &(iv, id) in &data {
            incr.insert(iv, id).unwrap();
        }
        // Identical backbone parameters: bulk must reproduce the exact
        // incremental state, not just equivalent answers.
        assert_eq!(bulk.load_params().unwrap(), incr.load_params().unwrap());
        assert_eq!(bulk.count().unwrap(), incr.count().unwrap());
        for q in [(-60_000i64, 300_000i64), (0, 1000), (100_000, 100_500), (7, 7)] {
            let q = Interval::new(q.0, q.1).unwrap();
            assert_eq!(bulk.intersection(q).unwrap(), incr.intersection(q).unwrap(), "{q}");
        }
        // Deletions work on bulk-loaded trees (forks recomputed correctly).
        let (iv, id) = data[1234];
        assert!(bulk.delete(iv, id).unwrap());
        assert!(!bulk.delete(iv, id).unwrap());
        // Bulk-loaded indexes are denser.
        assert!(bulk.storage().unwrap().index_pages <= incr.storage().unwrap().index_pages,);
    }

    #[test]
    fn bulk_load_empty_and_with_skeleton() {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::with_capacity(200),
        ));
        let db = Arc::new(Database::create(pool).unwrap());
        let empty = RiTree::bulk_load(Arc::clone(&db), "e", RiOptions::default(), []).unwrap();
        assert_eq!(empty.count().unwrap(), 0);
        assert_eq!(empty.intersection(Interval::new(0, 10).unwrap()).unwrap(), Vec::<i64>::new());

        let data: Vec<(Interval, i64)> =
            (0..500).map(|i| (Interval::new(i * 3, i * 3 + 10).unwrap(), i)).collect();
        let skel =
            RiTree::bulk_load(Arc::clone(&db), "s", RiOptions { skeleton: true }, data.clone())
                .unwrap();
        for &(iv, id) in data.iter().step_by(97) {
            assert!(skel.intersection(iv).unwrap().contains(&id));
        }
        // Reopen restores the skeleton automatically.
        let reopened = RiTree::open(db, "s").unwrap();
        assert_eq!(
            reopened.intersection(Interval::new(0, 2000).unwrap()).unwrap().len(),
            skel.intersection(Interval::new(0, 2000).unwrap()).unwrap().len()
        );
    }

    #[test]
    fn storage_is_two_entries_per_interval() {
        let (_db, tree) = fresh();
        for i in 0..500 {
            tree.insert(Interval::new(i, i + 3).unwrap(), i).unwrap();
        }
        let s = tree.storage().unwrap();
        assert_eq!(s.rows, 500);
        assert_eq!(s.index_entries, 1000, "RI-tree stores exactly 2 index entries per interval");
    }
}
