//! Property tests for the virtual backbone arithmetic, checked against
//! brute-force enumeration of registered fork nodes.

use proptest::prelude::*;
use ritree_core::BackboneParams;

fn interval_strategy() -> impl Strategy<Value = (i64, i64)> {
    // Mix of magnitudes, including negatives and points.
    (-100_000i64..100_000, 0i64..50_000).prop_map(|(l, len)| (l, l + len))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The fork node always lies inside its interval (shifted space), and
    /// recomputing it after arbitrary later insertions yields the same
    /// node — the property deletion depends on (Section 3.4).
    #[test]
    fn forks_are_inside_and_stable(data in prop::collection::vec(interval_strategy(), 1..120)) {
        let mut p = BackboneParams::new();
        let mut forks = Vec::new();
        for &(l, u) in &data {
            forks.push(p.prepare_insert(l, u));
        }
        let offset = p.offset.unwrap();
        for (i, &(l, u)) in data.iter().enumerate() {
            let w = forks[i];
            prop_assert!(l - offset <= w && w <= u - offset,
                "fork {w} outside shifted [{}, {}]", l - offset, u - offset);
            prop_assert_eq!(p.fork_of(l, u), Some(w), "fork moved after expansion");
        }
    }

    /// Query traversal soundness: for every stored interval intersecting
    /// the query, its fork node is either covered by the query's node range
    /// or appears in the transient left/right lists — i.e. the generated
    /// scans cannot miss results.
    #[test]
    fn traversal_covers_all_intersecting_forks(
        data in prop::collection::vec(interval_strategy(), 1..120),
        query in interval_strategy(),
    ) {
        let mut p = BackboneParams::new();
        let mut forks = Vec::new();
        for &(l, u) in &data {
            forks.push(p.prepare_insert(l, u));
        }
        let (ql, qu) = query;
        let nodes = p.query_nodes(ql, qu);
        let offset = p.offset.unwrap();
        let (l, u) = (ql - offset, qu - offset);
        for (i, &(dl, du)) in data.iter().enumerate() {
            if dl <= qu && ql <= du {
                let w = forks[i];
                let covered = nodes.left.iter().any(|&(a, b)| a <= w && w <= b);
                let in_right = nodes.right.contains(&w);
                prop_assert!(covered || in_right,
                    "intersecting interval [{dl}, {du}] fork {w} not reachable \
                     (query [{l}, {u}] shifted, lists {nodes:?})");
                // And the corresponding scan condition actually finds it:
                // left scans test upper >= ql, right scans test lower <= qu.
                if in_right && !covered {
                    prop_assert!(dl <= qu);
                } else {
                    prop_assert!(du >= ql);
                }
            }
        }
    }

    /// Traversal parsimony: side nodes are strictly outside the query range
    /// and there are at most O(height) of them.
    #[test]
    fn traversal_lists_are_small_and_strict(
        data in prop::collection::vec(interval_strategy(), 1..120),
        query in interval_strategy(),
    ) {
        let mut p = BackboneParams::new();
        for &(l, u) in &data {
            p.prepare_insert(l, u);
        }
        let (ql, qu) = query;
        let nodes = p.query_nodes(ql, qu);
        let offset = p.offset.unwrap();
        let (l, u) = (ql - offset, qu - offset);
        let h = p.height() as usize;
        prop_assert!(nodes.left.len() + nodes.right.len() <= 2 * h + 4,
            "lists too long: {} + {} for height {h}",
            nodes.left.len(), nodes.right.len());
        for &(a, b) in &nodes.left[..nodes.left.len() - 1] {
            prop_assert_eq!(a, b);
            prop_assert!(a < l);
        }
        for &w in &nodes.right {
            prop_assert!(w > u);
        }
        // The BETWEEN pair is exactly the shifted query range.
        prop_assert_eq!(*nodes.left.last().unwrap(), (l, u));
    }

    /// The Figure 4 static fork procedure agrees with the dynamic search
    /// whenever the static tree is big enough to contain the interval.
    #[test]
    fn fig4_agrees_with_dynamic_on_positive_space(
        pairs in prop::collection::vec((1i64..(1 << 16), 0i64..1000), 1..60),
    ) {
        let mut p = BackboneParams::new();
        // Anchor the offset at 0 and the space beyond 2^16 so the dynamic
        // right subtree matches a static tree rooted at 2^16.
        p.prepare_insert(0, 0);
        p.prepare_insert(1 << 16, 1 << 16);
        for &(l, len) in &pairs {
            let u = (l + len).min((1 << 17) - 1);
            let stat = ritree_core::fork_node_fig4(1 << 16, l, u);
            let dyn_fork = p.fork_of(l, u).unwrap();
            prop_assert_eq!(stat, dyn_fork, "interval [{}, {}]", l, u);
        }
    }
}
