//! Coherence tests for the read-through hot tier: the tier must answer
//! exactly like the naive oracle after every single operation, an
//! admitted-then-deleted interval must never reappear from the cache,
//! and under genuinely concurrent DML a reader may never observe a
//! stale id (deleted strictly before its query began) nor miss a
//! committed one (inserted strictly before, never deleted).

use ri_mem::NaiveIntervalSet;
use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk, DEFAULT_PAGE_SIZE};
use ri_relstore::Database;
use ritree_core::{HotTier, HotTierConfig, Interval, RiTree};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

fn fresh_tier(cfg: HotTierConfig) -> HotTier {
    let pool = Arc::new(BufferPool::new(
        MemDisk::new(DEFAULT_PAGE_SIZE),
        BufferPoolConfig::with_capacity(200),
    ));
    let db = Arc::new(Database::create(pool).unwrap());
    HotTier::new(RiTree::create(db, "hot").unwrap(), cfg)
}

fn iv(l: i64, u: i64) -> Interval {
    Interval::new(l, u).unwrap()
}

/// Deterministic xorshift — the tests must replay identically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Mixed inserts/deletes/queries against the oracle, with a small
/// rotating query set so blocks get admitted, hit, and invalidated;
/// exact equality is asserted after every operation.
#[test]
fn tier_matches_oracle_after_every_operation() {
    let tier = fresh_tier(HotTierConfig::with_capacity(64));
    let mut oracle = NaiveIntervalSet::new();
    let mut rng = Rng(0xC0FFEE);
    let mut live: Vec<(i64, i64, i64)> = Vec::new();
    let mut next_id = 0i64;
    // Eight fixed query windows over the hot half of the domain: repeats
    // drive 2Q admission, so later queries are served from the HINT.
    let windows: Vec<Interval> = (0..8).map(|i| iv(i * 40_000, i * 40_000 + 24_000)).collect();
    for _ in 0..250 {
        let l = rng.below(500_000) as i64;
        let u = l + 200 + rng.below(4_000) as i64;
        tier.insert(iv(l, u), next_id).unwrap();
        oracle.insert(l, u, next_id);
        live.push((l, u, next_id));
        next_id += 1;
    }
    for round in 0..600 {
        match rng.below(10) {
            0..=5 => {
                let q = windows[rng.below(8) as usize];
                assert_eq!(
                    tier.intersection(q).unwrap(),
                    oracle.intersection(q.lower, q.upper),
                    "round {round}, query {q:?}"
                );
            }
            6..=7 => {
                let l = rng.below(500_000) as i64;
                let u = l + 200 + rng.below(4_000) as i64;
                tier.insert(iv(l, u), next_id).unwrap();
                oracle.insert(l, u, next_id);
                live.push((l, u, next_id));
                next_id += 1;
            }
            _ => {
                if !live.is_empty() {
                    let (l, u, id) = live.swap_remove(rng.below(live.len() as u64) as usize);
                    assert!(tier.delete(iv(l, u), id).unwrap(), "live triple deletes");
                    assert!(oracle.delete(l, u, id));
                }
            }
        }
    }
    let stats = tier.stats();
    assert!(stats.hits > 0, "the cache never served a query: {stats:?}");
    assert!(stats.admissions > 0, "nothing was ever admitted: {stats:?}");
    assert!(stats.invalidations > 0, "no delete ever hit a cached entry: {stats:?}");
}

/// The zero-stale-reads contract in its sharpest form: admit a block,
/// verify the id is served from the cache, delete it, and require the
/// very next query — still a cache hit — to not return it.
#[test]
fn admitted_then_deleted_interval_never_reappears() {
    let tier = fresh_tier(HotTierConfig::with_capacity(1024));
    for i in 0..100 {
        tier.insert(iv(i * 100, i * 100 + 250), i).unwrap();
    }
    let q = iv(5_000, 6_000);
    tier.intersection(q).unwrap(); // miss, ghost
    tier.intersection(q).unwrap(); // miss, admit
    let hits_before = tier.stats().hits;
    let cached = tier.intersection(q).unwrap(); // hit
    assert_eq!(tier.stats().hits, hits_before + 1, "span must be resident");
    assert!(cached.contains(&55), "id 55 ([5500, 5750]) intersects {q:?}");

    assert!(tier.delete(iv(5_500, 5_750), 55).unwrap());
    let after = tier.intersection(q).unwrap();
    assert_eq!(tier.stats().hits, hits_before + 2, "delete must not demote the block");
    assert!(!after.contains(&55), "stale read of a deleted interval");

    // And a fresh insert into the resident block appears immediately.
    tier.insert(iv(5_400, 5_800), 777).unwrap();
    let with_new = tier.intersection(q).unwrap();
    assert_eq!(tier.stats().hits, hits_before + 3);
    assert!(with_new.contains(&777), "committed insert missing from a hit");
}

const WRITERS: usize = 4;
const PER_WRITER: usize = 150;
const READERS: usize = 2;
const READS: usize = 300;
const DOMAIN: i64 = 1 << 20;

/// Interval of an id: scattered deterministically over the domain.
fn iv_of(id: i64) -> Interval {
    let lo = (id.wrapping_mul(2_654_435_761)).rem_euclid(DOMAIN - 1_000);
    iv(lo, lo + 600)
}

/// Concurrent writers (disjoint id ranges, insert-then-sometimes-delete
/// through the tier) against Zipf-skewed readers, ordered by one global
/// ticket clock:
///
/// * an id whose delete **completed** before a query began must not be
///   returned (zero stale reads after delete);
/// * an id whose insert completed before the query began, with no
///   delete started by the time it ended, must be returned if it
///   intersects;
/// * after the threads quiesce, a full sweep must equal the oracle.
#[test]
fn concurrent_writers_and_readers_see_no_stale_reads() {
    let tier = fresh_tier(HotTierConfig::with_capacity(4_096));
    let clock = AtomicU64::new(1);
    let total = WRITERS * PER_WRITER;
    let ins_done: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
    let del_start: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
    let del_done: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let (tier, clock) = (&tier, &clock);
            let (ins_done, del_start, del_done) = (&ins_done, &del_start, &del_done);
            s.spawn(move || {
                for k in 0..PER_WRITER {
                    let id = (w * PER_WRITER + k) as i64;
                    tier.insert(iv_of(id), id).unwrap();
                    ins_done[id as usize].store(clock.fetch_add(1, SeqCst), SeqCst);
                    // Every third insert, delete an older id of ours.
                    if k % 3 == 2 {
                        let victim = id - 2;
                        del_start[victim as usize].store(clock.fetch_add(1, SeqCst), SeqCst);
                        assert!(tier.delete(iv_of(victim), victim).unwrap());
                        del_done[victim as usize].store(clock.fetch_add(1, SeqCst), SeqCst);
                    }
                }
            });
        }
        for r in 0..READERS {
            let (tier, clock) = (&tier, &clock);
            let (ins_done, del_start, del_done) = (&ins_done, &del_start, &del_done);
            s.spawn(move || {
                let mut rng = Rng(0xFEED + r as u64);
                for _ in 0..READS {
                    // Zipf-ish: cube a uniform variate so queries pile
                    // onto the low end of the domain — repeats there get
                    // the blocks admitted and then hit while writers
                    // churn them.
                    let u = rng.below(1 << 20) as f64 / (1u64 << 20) as f64;
                    let lo = ((u * u * u) * (DOMAIN - 4_000) as f64) as i64;
                    let q = iv(lo, lo + 3_000);
                    let t0 = clock.fetch_add(1, SeqCst);
                    let got = tier.intersection(q).unwrap();
                    let t1 = clock.fetch_add(1, SeqCst);
                    for &id in &got {
                        let dd = del_done[id as usize].load(SeqCst);
                        assert!(
                            !(dd != 0 && dd < t0),
                            "stale read: id {id} deleted at {dd}, query began at {t0}"
                        );
                    }
                    for id in 0..total {
                        let ins = ins_done[id].load(SeqCst);
                        let started = del_start[id].load(SeqCst);
                        let w = iv_of(id as i64);
                        if ins != 0
                            && ins < t0
                            && (started == 0 || started > t1)
                            && w.lower <= q.upper
                            && q.lower <= w.upper
                        {
                            assert!(
                                got.contains(&(id as i64)),
                                "lost read: id {id} ({w:?}) inserted at {ins}, \
                                 no delete started before {t1}, query [{t0}, {t1}] {q:?}"
                            );
                        }
                    }
                }
            });
        }
    });

    // Quiesced: the tier (cache hits included) must equal the oracle.
    let mut oracle = NaiveIntervalSet::new();
    for id in 0..total {
        if ins_done[id].load(SeqCst) != 0 && del_done[id].load(SeqCst) == 0 {
            let w = iv_of(id as i64);
            oracle.insert(w.lower, w.upper, id as i64);
        }
    }
    for lo in (0..DOMAIN - 8_000).step_by(65_536) {
        let q = iv(lo, lo + 8_000);
        for _ in 0..3 {
            assert_eq!(tier.intersection(q).unwrap(), oracle.intersection(q.lower, q.upper));
        }
    }
    let all = iv(0, DOMAIN - 1);
    assert_eq!(tier.intersection(all).unwrap(), oracle.intersection(0, DOMAIN - 1));
    let stats = tier.stats();
    assert!(stats.hits > 0, "the stress never exercised the cache: {stats:?}");
    assert!(stats.admissions > 0, "{stats:?}");
}
