//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] and [`prop_oneof!`] macros, `prop_assert*!`, the
//! [`Strategy`] trait with `prop_map`/`boxed`, strategies for numeric
//! ranges, tuples, `prop::collection::vec`, and `any::<T>()`, plus
//! [`ProptestConfig`]. Test inputs are generated from a deterministic
//! per-test seed (derived from the test name), so failures reproduce
//! exactly.
//!
//! # Shrinking
//!
//! Failures shrink through a miniature **value tree** (like real
//! proptest's `ValueTree`): every generated value carries enough of its
//! own provenance to propose simpler variants of *itself*.  Scalars
//! halve toward their range start (with a final −1 descent, so numeric
//! thresholds are found exactly), vectors shed length (halving, then one
//! element at a time) and shrink their elements, tuples shrink
//! componentwise, **`prop_map` passes shrinking through** (the source
//! value shrinks and the mapping is re-applied), and **`prop_oneof!`
//! shrinks by descending variant index** (candidates are regenerated
//! from lower-indexed — i.e. listed-earlier, conventionally simpler —
//! arms, most aggressive first).  The failing input is repeatedly
//! replaced by the first simpler candidate that still fails until no
//! candidate fails or the iteration budget is spent; the minimal input
//! is printed with `{:#?}` and the test then fails with the panic the
//! minimal input produces.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

pub use rand::rngs::StdRng as TestRng;
use rand::Rng;

/// Per-`proptest!` block configuration. `cases` and `max_shrink_iters`
/// are honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Budget of extra test-body executions the shrinker may spend once a
    /// case fails (0 disables shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 1024 }
    }
}

/// Derive a stable 64-bit seed from a test's module path and name, so
/// every test runs a distinct but reproducible sequence.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A concrete generated value plus its shrink provenance — the shim's
/// miniature version of proptest's `ValueTree`.  Trees are immutable and
/// cheaply shareable ([`TreeRef`]), so composite trees (tuples, vectors,
/// unions, maps) recombine candidate components without regeneration.
pub trait ValueTree {
    /// The value type this tree produces.
    type Value: Clone + Debug;

    /// The tree's current concrete value.
    fn current(&self) -> Self::Value;

    /// Simpler candidate trees, most aggressive first.  Empty when the
    /// value is already minimal.
    fn shrink(&self) -> Vec<TreeRef<Self::Value>>;
}

/// Shared handle to a [`ValueTree`].
pub type TreeRef<V> = Rc<dyn ValueTree<Value = V>>;

/// A generator of test inputs: produces a [`ValueTree`] from the RNG.
pub trait Strategy {
    type Value: Clone + Debug;

    fn new_tree(&self, rng: &mut TestRng) -> TreeRef<Self::Value>;

    /// Convenience: a bare value, discarding the shrink provenance.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        self.new_tree(rng).current()
    }

    /// Maps generated values through `f`.  Shrinking **passes through**:
    /// the source value shrinks and `f` is re-applied, so mapped values
    /// (enum variants, derived structs) minimize like their sources.
    fn prop_map<U, F>(self, f: F) -> Map<Self, U>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f: Rc::new(f) }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Clone + Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_tree(&self, rng: &mut TestRng) -> TreeRef<V> {
        (**self).new_tree(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_tree(&self, rng: &mut TestRng) -> TreeRef<S::Value> {
        (**self).new_tree(rng)
    }
}

// ----------------------------------------------------------------------
// Numeric ranges
// ----------------------------------------------------------------------

/// Tree for an integer drawn from a range: remembers the range start so
/// candidates descend toward it.
struct IntTree<T> {
    value: T,
    lo: T,
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl ValueTree for IntTree<$t> {
            type Value = $t;
            fn current(&self) -> $t {
                self.value
            }
            fn shrink(&self) -> Vec<TreeRef<$t>> {
                let (lo, v) = (self.lo, self.value);
                let mut out: Vec<TreeRef<$t>> = Vec::new();
                let mut push = |value: $t| out.push(Rc::new(IntTree { value, lo }) as TreeRef<$t>);
                if v != lo {
                    push(lo);
                    // Overflow-free floor midpoint: `lo + (v - lo) / 2`
                    // would overflow on ranges wider than the type's
                    // positive span (e.g. `i64::MIN..i64::MAX`).
                    let mid = (lo & v) + ((lo ^ v) >> 1);
                    if mid != lo && mid != v {
                        push(mid);
                    }
                    let dec = v - 1;
                    if dec != lo && dec != mid {
                        push(dec);
                    }
                }
                out
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut TestRng) -> TreeRef<$t> {
                Rc::new(IntTree { value: rng.gen_range(self.clone()), lo: self.start })
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

struct F64Tree {
    value: f64,
    lo: f64,
}

impl ValueTree for F64Tree {
    type Value = f64;
    fn current(&self) -> f64 {
        self.value
    }
    fn shrink(&self) -> Vec<TreeRef<f64>> {
        let (lo, v) = (self.lo, self.value);
        let mut out: Vec<TreeRef<f64>> = Vec::new();
        if v > lo {
            out.push(Rc::new(F64Tree { value: lo, lo }));
            let mid = lo + (v - lo) / 2.0;
            if mid > lo && mid < v {
                out.push(Rc::new(F64Tree { value: mid, lo }));
            }
        }
        out
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_tree(&self, rng: &mut TestRng) -> TreeRef<f64> {
        Rc::new(F64Tree { value: rng.gen_range(self.clone()), lo: self.start })
    }
}

// ----------------------------------------------------------------------
// Tuples
// ----------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident : ($($s:ident . $idx:tt),+))*) => {$(
        struct $name<$($s: Clone + Debug),+> {
            trees: ($(TreeRef<$s>,)+),
        }

        impl<$($s: Clone + Debug + 'static),+> ValueTree for $name<$($s),+> {
            type Value = ($($s,)+);
            fn current(&self) -> Self::Value {
                ($(self.trees.$idx.current(),)+)
            }
            fn shrink(&self) -> Vec<TreeRef<Self::Value>> {
                let mut out: Vec<TreeRef<Self::Value>> = Vec::new();
                $(
                    for cand in self.trees.$idx.shrink() {
                        // Tuples of `Rc` handles clone cheaply.
                        let mut trees = self.trees.clone();
                        trees.$idx = cand;
                        out.push(Rc::new($name { trees }));
                    }
                )+
                out
            }
        }

        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: 'static,)+
        {
            type Value = ($($s::Value,)+);
            fn new_tree(&self, rng: &mut TestRng) -> TreeRef<Self::Value> {
                // Component values are drawn left-to-right, matching the
                // historical per-argument generation order exactly.
                Rc::new($name { trees: ($(self.$idx.new_tree(rng),)+) })
            }
        }
    )*};
}

impl_tuple_strategy! {
    TupleTree1: (A.0)
    TupleTree2: (A.0, B.1)
    TupleTree3: (A.0, B.1, C.2)
    TupleTree4: (A.0, B.1, C.2, D.3)
    TupleTree5: (A.0, B.1, C.2, D.3, E.4)
}

// ----------------------------------------------------------------------
// prop_map: pass-through value tree
// ----------------------------------------------------------------------

/// Output of [`Strategy::prop_map`].
pub struct Map<S: Strategy, U> {
    inner: S,
    f: Rc<dyn Fn(S::Value) -> U>,
}

struct MapTree<V: Clone + Debug, U> {
    source: TreeRef<V>,
    f: Rc<dyn Fn(V) -> U>,
}

impl<V: Clone + Debug + 'static, U: Clone + Debug + 'static> ValueTree for MapTree<V, U> {
    type Value = U;
    fn current(&self) -> U {
        (self.f)(self.source.current())
    }
    fn shrink(&self) -> Vec<TreeRef<U>> {
        self.source
            .shrink()
            .into_iter()
            .map(|source| Rc::new(MapTree { source, f: Rc::clone(&self.f) }) as TreeRef<U>)
            .collect()
    }
}

impl<S, U> Strategy for Map<S, U>
where
    S: Strategy,
    S::Value: 'static,
    U: Clone + Debug + 'static,
{
    type Value = U;
    fn new_tree(&self, rng: &mut TestRng) -> TreeRef<U> {
        Rc::new(MapTree { source: self.inner.new_tree(rng), f: Rc::clone(&self.f) })
    }
}

// ----------------------------------------------------------------------
// any::<T>()
// ----------------------------------------------------------------------

/// `any::<T>()` — the canonical strategy for a whole type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Clone + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
    /// Simpler candidates for a failing value.
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// Output of [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

struct ArbTree<T> {
    value: T,
}

impl<T: Arbitrary + 'static> ValueTree for ArbTree<T> {
    type Value = T;
    fn current(&self) -> T {
        self.value.clone()
    }
    fn shrink(&self) -> Vec<TreeRef<T>> {
        self.value
            .shrink_value()
            .into_iter()
            .map(|value| Rc::new(ArbTree { value }) as TreeRef<T>)
            .collect()
    }
}

impl<T: Arbitrary + 'static> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_tree(&self, rng: &mut TestRng) -> TreeRef<T> {
        Rc::new(ArbTree { value: T::arbitrary(rng) })
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
    fn shrink_value(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink_value(&self) -> Vec<$t> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    let half = v / 2;
                    if half != 0 && half != v {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// ----------------------------------------------------------------------
// Collections
// ----------------------------------------------------------------------

pub mod collection {
    use super::{Rc, Strategy, TestRng, TreeRef, ValueTree};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range for collection::vec");
        VecStrategy { element, size }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    struct VecTree<V: Clone + Debug> {
        elems: Vec<TreeRef<V>>,
        min: usize,
    }

    impl<V: Clone + Debug + 'static> ValueTree for VecTree<V> {
        type Value = Vec<V>;
        fn current(&self) -> Vec<V> {
            self.elems.iter().map(|t| t.current()).collect()
        }
        fn shrink(&self) -> Vec<TreeRef<Vec<V>>> {
            let mut out: Vec<TreeRef<Vec<V>>> = Vec::new();
            let min = self.min;
            let mut push = |elems: Vec<TreeRef<V>>| {
                out.push(Rc::new(VecTree { elems, min }) as TreeRef<Vec<V>>)
            };
            // Length shrinks first: halve toward the minimum (keeping the
            // head, then the tail — bugs may need late elements), then
            // drop a single element.
            if self.elems.len() > min {
                let half = (self.elems.len() / 2).max(min);
                if half < self.elems.len() {
                    push(self.elems[..half].to_vec());
                    push(self.elems[self.elems.len() - half..].to_vec());
                }
                push(self.elems[..self.elems.len() - 1].to_vec());
            }
            // Element shrinks: a couple of candidates per position.
            for (i, item) in self.elems.iter().enumerate() {
                for cand in item.shrink().into_iter().take(2) {
                    let mut next = self.elems.clone();
                    next[i] = cand;
                    push(next);
                }
            }
            out
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: 'static,
    {
        type Value = Vec<S::Value>;
        fn new_tree(&self, rng: &mut TestRng) -> TreeRef<Vec<S::Value>> {
            let len = rng.gen_range(self.size.clone());
            let elems = (0..len).map(|_| self.element.new_tree(rng)).collect();
            Rc::new(VecTree { elems, min: self.size.start })
        }
    }
}

// ----------------------------------------------------------------------
// prop_oneof: descending variant index
// ----------------------------------------------------------------------

pub mod strategy {
    pub use super::{BoxedStrategy, Map, Strategy};
    use super::{Rc, TestRng, TreeRef, ValueTree};
    use std::fmt::Debug;

    /// Weighted choice among boxed strategies of a common value type —
    /// what [`crate::prop_oneof!`] builds.  Shrinks by **descending
    /// variant index**: candidates are regenerated from lower-indexed
    /// (listed-earlier, conventionally simpler) arms, most aggressive
    /// (arm 0) first, then the chosen arm's own value shrinks in place.
    pub struct Union<V> {
        arms: Rc<Vec<(u32, BoxedStrategy<V>)>>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|&(w, _)| w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union { arms: Rc::new(arms), total_weight }
        }
    }

    struct UnionTree<V: Clone + Debug> {
        arms: Rc<Vec<(u32, BoxedStrategy<V>)>>,
        index: usize,
        inner: TreeRef<V>,
        /// Deterministic seed for regenerating lower-arm candidates
        /// (derived from the arm pick, so the main RNG stream is not
        /// perturbed by shrinking).
        seed: u64,
    }

    impl<V: Clone + Debug + 'static> ValueTree for UnionTree<V> {
        type Value = V;
        fn current(&self) -> V {
            self.inner.current()
        }
        fn shrink(&self) -> Vec<TreeRef<V>> {
            let mut out: Vec<TreeRef<V>> = Vec::new();
            // Descend the variant index: arm 0 is the most aggressive
            // candidate.  Each lower arm contributes one freshly (but
            // deterministically) generated value.
            for index in 0..self.index {
                let mut rng = <TestRng as rand::SeedableRng>::seed_from_u64(
                    self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let inner = self.arms[index].1.new_tree(&mut rng);
                out.push(Rc::new(UnionTree {
                    arms: Rc::clone(&self.arms),
                    index,
                    inner,
                    seed: self.seed,
                }));
            }
            // Then the chosen arm's value shrinks in place.
            for inner in self.inner.shrink() {
                out.push(Rc::new(UnionTree {
                    arms: Rc::clone(&self.arms),
                    index: self.index,
                    inner,
                    seed: self.seed,
                }));
            }
            out
        }
    }

    impl<V: Clone + Debug + 'static> Strategy for Union<V> {
        type Value = V;
        fn new_tree(&self, rng: &mut TestRng) -> TreeRef<V> {
            let raw = rand::Rng::gen_range(rng, 0..self.total_weight);
            let mut pick = raw;
            for (index, (w, strat)) in self.arms.iter().enumerate() {
                if pick < *w as u64 {
                    let inner = strat.new_tree(rng);
                    return Rc::new(UnionTree {
                        arms: Rc::clone(&self.arms),
                        index,
                        inner,
                        seed: raw,
                    });
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of bounds")
        }
    }
}

// ----------------------------------------------------------------------
// Shrink driver
// ----------------------------------------------------------------------

/// Drives shrinking: repeatedly replaces `failing` with the first
/// simpler candidate tree whose value still fails, until no candidate
/// fails or the iteration budget is spent.  `fails` must return `true`
/// when the test body fails on the given input.  Returns the minimal
/// failing value and the number of test-body executions used.
pub fn shrink_failing<V: Clone + Debug>(
    mut failing: TreeRef<V>,
    mut fails: impl FnMut(&V) -> bool,
    max_iters: u32,
) -> (V, u32) {
    let mut used = 0u32;
    'outer: while used < max_iters {
        for candidate in failing.shrink() {
            if used >= max_iters {
                break 'outer;
            }
            used += 1;
            if fails(&candidate.current()) {
                failing = candidate;
                continue 'outer;
            }
        }
        break;
    }
    (failing.current(), used)
}

/// Test driver behind the [`proptest!`] macro: runs `config.cases`
/// seeded cases of `run` over values from `strat`, shrinking the first
/// failure to a minimal counterexample.
#[doc(hidden)]
pub fn __drive<S: Strategy>(
    config: ProptestConfig,
    seed: u64,
    name: &str,
    strat: S,
    run: impl Fn(S::Value),
) {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    let mut rng = <TestRng as rand::SeedableRng>::seed_from_u64(seed);
    for case in 0..config.cases {
        let tree = strat.new_tree(&mut rng);
        let vals = tree.current();
        let result = catch_unwind(AssertUnwindSafe(|| run(vals.clone())));
        let Err(payload) = result else { continue };
        eprintln!(
            "proptest shim: {name} failed on case {}/{} (seed {seed:#x}); shrinking (<= {} runs)",
            case + 1,
            config.cases,
            config.max_shrink_iters,
        );
        // Silence the panic hook while the shrinker probes candidates —
        // each failing probe would otherwise print a full panic message.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (minimal, used) = shrink_failing(
            tree,
            |v| catch_unwind(AssertUnwindSafe(|| run(v.clone()))).is_err(),
            config.max_shrink_iters,
        );
        std::panic::set_hook(prev_hook);
        eprintln!("proptest shim: minimal counterexample after {used} shrink runs:\n{minimal:#?}");
        // Fail with the minimal input's own panic so the printed
        // assertion matches the printed input.
        run(minimal);
        // Unreachable unless the failure is flaky; surface the original
        // panic in that case.
        resume_unwind(payload);
    }
}

/// Everything the tests import with `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted (`w => strategy`) or unweighted choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// The `proptest! { ... }` block: expands each contained
/// `#[test] fn name(pat in strategy, ...) { body }` into a plain
/// `#[test]` that runs `config.cases` deterministic random cases and
/// shrinks the first failure to a minimal counterexample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                // All arguments form one tuple strategy, so the failing
                // case shrinks componentwise as a unit.  Component values
                // are drawn left-to-right, matching the historical
                // per-argument generation order exactly.
                $crate::__drive(
                    $config,
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                    stringify!($name),
                    ( $( ($strat), )* ),
                    |( $($arg,)* )| $body,
                );
            }
        )*
    };
}

#[doc(hidden)]
pub use rand as __rand;

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{shrink_failing, TestRng, TreeRef};
    use rand::SeedableRng;

    #[derive(Clone, Debug, PartialEq)]
    enum Tri {
        A(i64),
        B(i64),
        C,
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Doc comments and `mut` bindings must both parse.
        #[test]
        fn vec_and_map_strategies_work(mut xs in prop::collection::vec((0i64..10, 0i64..10).prop_map(|(a, b)| a + b), 1..30)) {
            xs.sort();
            prop_assert!(!xs.is_empty() && xs.len() < 30);
            prop_assert!(xs.iter().all(|&x| (0..19).contains(&x)));
        }

        #[test]
        fn oneof_hits_every_weighted_arm(vals in prop::collection::vec(prop_oneof![
            3 => (0i64..5).prop_map(Tri::A),
            2 => (5i64..10).prop_map(Tri::B),
            1 => (0i64..1).prop_map(|_| Tri::C),
        ], 40..60), flag in any::<bool>()) {
            prop_assert!(vals.iter().any(|v| matches!(v, Tri::A(_))));
            let _ = flag;
            for v in &vals {
                match *v {
                    Tri::A(x) => prop_assert!((0..5).contains(&x)),
                    Tri::B(x) => prop_assert!((5..10).contains(&x)),
                    Tri::C => {}
                }
            }
        }
    }

    #[test]
    fn same_name_same_sequence() {
        let mut a = TestRng::seed_from_u64(crate::seed_for("x"));
        let mut b = TestRng::seed_from_u64(crate::seed_for("x"));
        let s = 0i64..1000;
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }

    // ------------------------------------------------------------------
    // Shrinking self-tests
    // ------------------------------------------------------------------

    /// Generates trees from a seeded RNG until one's value fails, then
    /// returns that tree (panics if no failing case is found).
    fn first_failing<S: Strategy>(
        strat: &S,
        seed: u64,
        fails: impl Fn(&S::Value) -> bool,
    ) -> TreeRef<S::Value> {
        let mut rng = TestRng::seed_from_u64(seed);
        for _ in 0..10_000 {
            let tree = strat.new_tree(&mut rng);
            if fails(&tree.current()) {
                return tree;
            }
        }
        panic!("no failing case found");
    }

    #[test]
    fn scalar_shrink_finds_the_exact_threshold() {
        // Failure iff v >= 17: the -1 descent must land exactly on 17.
        let strat = 0i64..1000;
        let tree = first_failing(&strat, 1, |&v| v >= 17);
        let (minimal, _) = shrink_failing(tree, |&v| v >= 17, 4096);
        assert_eq!(minimal, 17);
    }

    #[test]
    fn vec_shrink_reaches_the_minimal_failing_length() {
        let strat = prop::collection::vec(0i64..100, 1..60);
        // Failure iff the vec has >= 10 elements.
        let tree = first_failing(&strat, 2, |v: &Vec<i64>| v.len() >= 10);
        let (minimal, _) = shrink_failing(tree, |v| v.len() >= 10, 4096);
        assert_eq!(minimal.len(), 10, "minimal counterexample: {minimal:?}");
        // Its elements shrink toward the range start too.
        assert!(minimal.iter().all(|&x| x == 0), "minimal counterexample: {minimal:?}");
    }

    #[test]
    fn tuple_shrink_is_componentwise_and_respects_ranges() {
        let strat = (5i64..100, 3i64..50);
        // Failure iff a + b >= 20.
        let tree = first_failing(&strat, 3, |&(a, b)| a + b >= 20);
        let (minimal, _) = shrink_failing(tree, |&(a, b)| a + b >= 20, 4096);
        assert!(minimal.0 + minimal.1 >= 20, "minimal must still fail");
        assert_eq!(minimal.0 + minimal.1, 20, "naive descent still finds the boundary");
        assert!(minimal.0 >= 5 && minimal.1 >= 3, "candidates stay inside the ranges");
    }

    #[test]
    fn mapped_values_shrink_through_the_map() {
        // The pass-through value tree: a mapped enum variant minimizes
        // its source payload (pre-PR 5 these values were opaque).
        let strat = (0i64..1000).prop_map(Tri::A);
        let fails = |v: &Tri| matches!(v, Tri::A(x) if *x >= 40);
        let tree = first_failing(&strat, 4, fails);
        let (minimal, _) = shrink_failing(tree, |v| fails(v), 4096);
        assert_eq!(minimal, Tri::A(40), "mapped payload must minimize to the threshold");
    }

    #[test]
    fn oneof_shrinks_by_descending_variant_index() {
        // Arm order: A (index 0) before B (index 1).  A failure that any
        // value triggers must therefore minimize into arm 0's minimal
        // value — the shrinker descends the variant index.
        let strat = prop_oneof![
            1 => (0i64..10).prop_map(Tri::A),
            8 => (5i64..10).prop_map(Tri::B),
        ];
        let tree = first_failing(&strat, 5, |v| matches!(v, Tri::B(_)));
        let (minimal, _) = shrink_failing(tree, |_| true, 4096);
        assert_eq!(minimal, Tri::A(0), "always-failing input must descend to arm 0, minimized");
    }

    #[test]
    fn oneof_keeps_failures_inside_the_failing_arm_when_lower_arms_pass() {
        // When the failure is specific to arm B, candidates from arm A
        // do not fail, so the value must stay a B and minimize in place.
        let strat = prop_oneof![
            1 => (0i64..10).prop_map(Tri::A),
            8 => (5i64..100).prop_map(Tri::B),
        ];
        let fails = |v: &Tri| matches!(v, Tri::B(x) if *x >= 7);
        let tree = first_failing(&strat, 6, fails);
        let (minimal, _) = shrink_failing(tree, |v| fails(v), 4096);
        assert_eq!(minimal, Tri::B(7), "arm-specific failure minimizes inside its arm");
    }

    #[test]
    fn vec_of_mapped_oneof_minimizes_fully() {
        // The combination the concurrency schedules use: a vec of
        // mapped/oneof ops.  Everything minimizes now — length first,
        // then each op descends to the simplest variant and payload.
        let strat = prop::collection::vec(
            prop_oneof![
                1 => (0i64..10).prop_map(Tri::A),
                1 => (5i64..10).prop_map(Tri::B),
            ],
            1..40,
        );
        let tree = first_failing(&strat, 7, |v: &Vec<Tri>| v.len() >= 3);
        let (minimal, _) = shrink_failing(tree, |v| v.len() >= 3, 8192);
        assert_eq!(minimal, vec![Tri::A(0), Tri::A(0), Tri::A(0)], "got {minimal:?}");
    }

    #[test]
    fn shrink_respects_the_iteration_budget() {
        let strat = 0i64..i64::MAX;
        let tree = first_failing(&strat, 8, |&v| v >= 1);
        let (_, used) = shrink_failing(tree, |&v| v >= 1, 7);
        assert!(used <= 7);
    }

    #[test]
    fn shrink_survives_full_width_ranges() {
        // `v - lo` would overflow in a naive midpoint; candidates must
        // not panic and must stay inside the range.
        let strat = i64::MIN..i64::MAX;
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..64 {
            let tree = strat.new_tree(&mut rng);
            let v = tree.current();
            for cand in tree.shrink() {
                assert!(
                    cand.current() < v,
                    "candidates simplify toward the start: {v} -> {}",
                    cand.current()
                );
            }
        }
        let tree = first_failing(&strat, 10, |&v| v >= i64::MAX / 2);
        let (minimal, _) = shrink_failing(tree, |&v| v >= i64::MAX / 2, 256);
        assert!(minimal >= i64::MAX / 2);
    }

    #[test]
    fn booleans_shrink_to_false() {
        assert_eq!(true.shrink_value(), vec![false]);
        assert!(false.shrink_value().is_empty());
    }
}
