//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] and [`prop_oneof!`] macros, `prop_assert*!`, the
//! [`Strategy`] trait with `prop_map`/`boxed`, strategies for numeric
//! ranges, tuples, `prop::collection::vec`, and `any::<T>()`, plus
//! [`ProptestConfig`]. Test inputs are generated from a deterministic
//! per-test seed (derived from the test name), so failures reproduce
//! exactly. There is **no shrinking**: a failure reports the case index
//! and panics with the normal assertion message.

use std::marker::PhantomData;
use std::ops::Range;

pub use rand::rngs::StdRng as TestRng;
use rand::Rng;

/// Per-`proptest!` block configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; ignored (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Derive a stable 64-bit seed from a test's module path and name, so
/// every test runs a distinct but reproducible sequence.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of test inputs. Unlike real proptest there is no value
/// tree: `new_value` directly produces a value from the RNG.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// `any::<T>()` — the canonical strategy for a whole type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Output of [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range for collection::vec");
        VecStrategy { element, size }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Map, Strategy};

    /// Weighted choice among boxed strategies of a common value type —
    /// what [`crate::prop_oneof!`] builds.
    pub struct Union<V> {
        arms: Vec<(u32, super::BoxedStrategy<V>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        pub fn new_weighted(arms: Vec<(u32, super::BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|&(w, _)| w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union { arms, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut super::TestRng) -> V {
            let mut pick = rand::Rng::gen_range(rng, 0..self.total_weight);
            for (w, strat) in &self.arms {
                if pick < *w as u64 {
                    return strat.new_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of bounds")
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted (`w => strategy`) or unweighted choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// The `proptest! { ... }` block: expands each contained
/// `#[test] fn name(pat in strategy, ...) { body }` into a plain
/// `#[test]` that runs `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut __rng =
                    <$crate::TestRng as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
                for __case in 0..__config.cases {
                    let __run = || {
                        $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)*
                        $body
                    };
                    if let Err(payload) =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(__run))
                    {
                        eprintln!(
                            "proptest shim: {} failed on case {}/{} (seed {:#x}); no shrinking",
                            stringify!($name), __case + 1, __config.cases, __seed,
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
pub use rand as __rand;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tri {
        A(i64),
        B(i64),
        C,
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Doc comments and `mut` bindings must both parse.
        #[test]
        fn vec_and_map_strategies_work(mut xs in prop::collection::vec((0i64..10, 0i64..10).prop_map(|(a, b)| a + b), 1..30)) {
            xs.sort();
            prop_assert!(!xs.is_empty() && xs.len() < 30);
            prop_assert!(xs.iter().all(|&x| (0..19).contains(&x)));
        }

        #[test]
        fn oneof_hits_every_weighted_arm(vals in prop::collection::vec(prop_oneof![
            3 => (0i64..5).prop_map(Tri::A),
            2 => (5i64..10).prop_map(Tri::B),
            1 => (0i64..1).prop_map(|_| Tri::C),
        ], 40..60), flag in any::<bool>()) {
            prop_assert!(vals.iter().any(|v| matches!(v, Tri::A(_))));
            let _ = flag;
            for v in &vals {
                match *v {
                    Tri::A(x) => prop_assert!((0..5).contains(&x)),
                    Tri::B(x) => prop_assert!((5..10).contains(&x)),
                    Tri::C => {}
                }
            }
        }
    }

    #[test]
    fn same_name_same_sequence() {
        let mut a = <crate::TestRng as rand::SeedableRng>::seed_from_u64(crate::seed_for("x"));
        let mut b = <crate::TestRng as rand::SeedableRng>::seed_from_u64(crate::seed_for("x"));
        let s = 0i64..1000;
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
