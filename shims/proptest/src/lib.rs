//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] and [`prop_oneof!`] macros, `prop_assert*!`, the
//! [`Strategy`] trait with `prop_map`/`boxed`, strategies for numeric
//! ranges, tuples, `prop::collection::vec`, and `any::<T>()`, plus
//! [`ProptestConfig`]. Test inputs are generated from a deterministic
//! per-test seed (derived from the test name), so failures reproduce
//! exactly.
//!
//! # Shrinking
//!
//! Failures are **naively shrunk**: the failing input is repeatedly
//! replaced by the first simpler candidate that still fails — scalars
//! halve toward their range start (with a final −1 descent, so numeric
//! thresholds are found exactly), vectors shed length (halving, then one
//! element at a time) and shrink their elements, tuples shrink
//! componentwise.  Values produced by `prop_map` or `prop_oneof!` are
//! opaque (the shim keeps no value tree) and do not shrink themselves,
//! but a `vec` *of* them still shrinks its length — usually the bulk of
//! a counterexample.  The minimal input is printed with `{:#?}` and the
//! test then fails with the panic the minimal input produces.

use std::marker::PhantomData;
use std::ops::Range;

pub use rand::rngs::StdRng as TestRng;
use rand::Rng;

/// Per-`proptest!` block configuration. `cases` and `max_shrink_iters`
/// are honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Budget of extra test-body executions the shrinker may spend once a
    /// case fails (0 disables shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 1024 }
    }
}

/// Derive a stable 64-bit seed from a test's module path and name, so
/// every test runs a distinct but reproducible sequence.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of test inputs. Unlike real proptest there is no value
/// tree: `new_value` directly produces a value from the RNG, and
/// [`Strategy::shrink`] proposes simpler variants of a concrete value.
pub trait Strategy {
    type Value: Clone + std::fmt::Debug;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Simpler candidates for `value`, most aggressive first.  The
    /// default is no candidates (opaque values, e.g. through `prop_map`).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Clone + std::fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        (**self).shrink(value)
    }
}

/// Output of [`Strategy::prop_map`].  Mapped values are opaque to the
/// shrinker (no inverse is available), so they produce no candidates.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: Clone + std::fmt::Debug,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, v) = (self.start, *value);
                let mut out = Vec::new();
                if v != lo {
                    out.push(lo);
                    // Overflow-free floor midpoint: `lo + (v - lo) / 2`
                    // would overflow on ranges wider than the type's
                    // positive span (e.g. `i64::MIN..i64::MAX`).
                    let mid = (lo & v) + ((lo ^ v) >> 1);
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    let dec = v - 1;
                    if dec != lo && dec != mid {
                        out.push(dec);
                    }
                }
                out
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let (lo, v) = (self.start, *value);
        let mut out = Vec::new();
        if v > lo {
            out.push(lo);
            let mid = lo + (v - lo) / 2.0;
            if mid > lo && mid < v {
                out.push(mid);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// `any::<T>()` — the canonical strategy for a whole type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Clone + std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
    /// Simpler candidates for a failing value (see [`Strategy::shrink`]).
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// Output of [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
    fn shrink_value(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink_value(&self) -> Vec<$t> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    let half = v / 2;
                    if half != 0 && half != v {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range for collection::vec");
        VecStrategy { element, size }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let min = self.size.start;
            // Length shrinks first: halve toward the minimum (keeping the
            // head, then the tail — bugs may need late elements), then
            // drop a single element.
            if value.len() > min {
                let half = (value.len() / 2).max(min);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                    out.push(value[value.len() - half..].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            // Element shrinks: a couple of candidates per position.
            for (i, item) in value.iter().enumerate() {
                for cand in self.element.shrink(item).into_iter().take(2) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Map, Strategy};

    /// Weighted choice among boxed strategies of a common value type —
    /// what [`crate::prop_oneof!`] builds.  Values are opaque to the
    /// shrinker (the producing arm is unknown after the fact).
    pub struct Union<V> {
        arms: Vec<(u32, super::BoxedStrategy<V>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        pub fn new_weighted(arms: Vec<(u32, super::BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|&(w, _)| w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union { arms, total_weight }
        }
    }

    impl<V: Clone + std::fmt::Debug> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut super::TestRng) -> V {
            let mut pick = rand::Rng::gen_range(rng, 0..self.total_weight);
            for (w, strat) in &self.arms {
                if pick < *w as u64 {
                    return strat.new_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of bounds")
        }
    }
}

/// Drives naive shrinking: repeatedly replaces `failing` with the first
/// simpler candidate that still fails, until no candidate fails or the
/// iteration budget is spent.  `fails` must return `true` when the test
/// body fails on the given input.  Returns the minimal failing value and
/// the number of test-body executions used.
pub fn shrink_failing<S: Strategy + ?Sized>(
    strat: &S,
    mut failing: S::Value,
    mut fails: impl FnMut(&S::Value) -> bool,
    max_iters: u32,
) -> (S::Value, u32) {
    let mut used = 0u32;
    'outer: while used < max_iters {
        for candidate in strat.shrink(&failing) {
            if used >= max_iters {
                break 'outer;
            }
            used += 1;
            if fails(&candidate) {
                failing = candidate;
                continue 'outer;
            }
        }
        break;
    }
    (failing, used)
}

/// Test driver behind the [`proptest!`] macro: runs `config.cases`
/// seeded cases of `run` over values from `strat`, shrinking the first
/// failure to a minimal counterexample.
#[doc(hidden)]
pub fn __drive<S: Strategy>(
    config: ProptestConfig,
    seed: u64,
    name: &str,
    strat: S,
    run: impl Fn(S::Value),
) {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    let mut rng = <TestRng as rand::SeedableRng>::seed_from_u64(seed);
    for case in 0..config.cases {
        let vals = strat.new_value(&mut rng);
        let result = catch_unwind(AssertUnwindSafe(|| run(vals.clone())));
        let Err(payload) = result else { continue };
        eprintln!(
            "proptest shim: {name} failed on case {}/{} (seed {seed:#x}); shrinking (<= {} runs)",
            case + 1,
            config.cases,
            config.max_shrink_iters,
        );
        // Silence the panic hook while the shrinker probes candidates —
        // each failing probe would otherwise print a full panic message.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (minimal, used) = shrink_failing(
            &strat,
            vals,
            |v| catch_unwind(AssertUnwindSafe(|| run(v.clone()))).is_err(),
            config.max_shrink_iters,
        );
        std::panic::set_hook(prev_hook);
        eprintln!("proptest shim: minimal counterexample after {used} shrink runs:\n{minimal:#?}");
        // Fail with the minimal input's own panic so the printed
        // assertion matches the printed input.
        run(minimal);
        // Unreachable unless the failure is flaky; surface the original
        // panic in that case.
        resume_unwind(payload);
    }
}

/// Everything the tests import with `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted (`w => strategy`) or unweighted choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// The `proptest! { ... }` block: expands each contained
/// `#[test] fn name(pat in strategy, ...) { body }` into a plain
/// `#[test]` that runs `config.cases` deterministic random cases and
/// shrinks the first failure to a minimal counterexample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                // All arguments form one tuple strategy, so the failing
                // case shrinks componentwise as a unit.  Component values
                // are drawn left-to-right, matching the historical
                // per-argument generation order exactly.
                $crate::__drive(
                    $config,
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                    stringify!($name),
                    ( $( ($strat), )* ),
                    |( $($arg,)* )| $body,
                );
            }
        )*
    };
}

#[doc(hidden)]
pub use rand as __rand;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tri {
        A(i64),
        B(i64),
        C,
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Doc comments and `mut` bindings must both parse.
        #[test]
        fn vec_and_map_strategies_work(mut xs in prop::collection::vec((0i64..10, 0i64..10).prop_map(|(a, b)| a + b), 1..30)) {
            xs.sort();
            prop_assert!(!xs.is_empty() && xs.len() < 30);
            prop_assert!(xs.iter().all(|&x| (0..19).contains(&x)));
        }

        #[test]
        fn oneof_hits_every_weighted_arm(vals in prop::collection::vec(prop_oneof![
            3 => (0i64..5).prop_map(Tri::A),
            2 => (5i64..10).prop_map(Tri::B),
            1 => (0i64..1).prop_map(|_| Tri::C),
        ], 40..60), flag in any::<bool>()) {
            prop_assert!(vals.iter().any(|v| matches!(v, Tri::A(_))));
            let _ = flag;
            for v in &vals {
                match *v {
                    Tri::A(x) => prop_assert!((0..5).contains(&x)),
                    Tri::B(x) => prop_assert!((5..10).contains(&x)),
                    Tri::C => {}
                }
            }
        }
    }

    #[test]
    fn same_name_same_sequence() {
        let mut a = <crate::TestRng as rand::SeedableRng>::seed_from_u64(crate::seed_for("x"));
        let mut b = <crate::TestRng as rand::SeedableRng>::seed_from_u64(crate::seed_for("x"));
        let s = 0i64..1000;
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }

    // ------------------------------------------------------------------
    // Shrinking self-tests
    // ------------------------------------------------------------------

    #[test]
    fn scalar_shrink_finds_the_exact_threshold() {
        // Failure iff v >= 17: the -1 descent must land exactly on 17.
        let strat = 0i64..1000;
        let (minimal, _) = crate::shrink_failing(&strat, 940, |&v| v >= 17, 4096);
        assert_eq!(minimal, 17);
    }

    #[test]
    fn vec_shrink_reaches_the_minimal_failing_length() {
        let strat = prop::collection::vec(0i64..100, 1..60);
        let failing: Vec<i64> = (0..57).collect();
        // Failure iff the vec has >= 10 elements.
        let (minimal, _) = crate::shrink_failing(&strat, failing, |v| v.len() >= 10, 4096);
        assert_eq!(minimal.len(), 10, "minimal counterexample: {minimal:?}");
        // Its elements shrink toward the range start too.
        assert!(minimal.iter().all(|&x| x == 0), "minimal counterexample: {minimal:?}");
    }

    #[test]
    fn tuple_shrink_is_componentwise_and_respects_ranges() {
        let strat = (5i64..100, 3i64..50);
        // Failure iff a + b >= 20.
        let (minimal, _) = crate::shrink_failing(&strat, (90, 44), |&(a, b)| a + b >= 20, 4096);
        assert!(minimal.0 + minimal.1 >= 20, "minimal must still fail");
        assert_eq!(minimal.0 + minimal.1, 20, "naive descent still finds the boundary");
        assert!(minimal.0 >= 5 && minimal.1 >= 3, "candidates stay inside the ranges");
    }

    #[test]
    fn mapped_and_oneof_values_do_not_shrink_but_their_vec_does() {
        let strat = prop::collection::vec((0i64..10).prop_map(Tri::A), 1..40);
        let failing: Vec<Tri> = (0..30).map(|i| Tri::A(i % 10)).collect();
        let (minimal, _) = crate::shrink_failing(&strat, failing, |v| v.len() >= 3, 4096);
        assert_eq!(minimal.len(), 3);
        let single = (0i64..10).prop_map(Tri::A);
        assert!(single.shrink(&Tri::A(7)).is_empty(), "mapped values are opaque");
    }

    #[test]
    fn shrink_respects_the_iteration_budget() {
        let strat = 0i64..i64::MAX;
        let (_, used) = crate::shrink_failing(&strat, i64::MAX - 1, |&v| v >= 1, 7);
        assert!(used <= 7);
    }

    #[test]
    fn shrink_survives_full_width_ranges() {
        // `v - lo` would overflow here; the midpoint must not panic and
        // must stay inside the range.
        let strat = i64::MIN..i64::MAX;
        for v in [i64::MAX - 1, 0, 1, i64::MIN + 1] {
            for cand in strat.shrink(&v) {
                assert!(cand < v, "candidates simplify toward the start: {v} -> {cand}");
            }
        }
        let (minimal, _) = crate::shrink_failing(&strat, i64::MAX - 1, |&v| v >= i64::MAX / 2, 256);
        assert!(minimal >= i64::MAX / 2);
    }

    #[test]
    fn booleans_shrink_to_false() {
        assert_eq!(true.shrink_value(), vec![false]);
        assert!(false.shrink_value().is_empty());
    }
}
