//! Offline stand-in for the `rand` crate.
//!
//! Implements only the surface this workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`], SplitMix64), the
//! [`Rng`] extension methods `gen_range` / `gen_bool`, and the
//! [`distributions::Distribution`] trait. The real crate's type and
//! module paths are preserved so the crates.io version can be swapped
//! back in without source changes.

/// Core generator trait: everything is derived from `next_u64`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a `Range` or `RangeInclusive`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map a `u64` to the unit interval `[0, 1)` using the top 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Not the real
    /// `StdRng`'s ChaCha12, but statistically fine for workload
    /// generation and property tests, and much simpler.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Ranges that can be sampled uniformly. Implemented for half-open and
/// inclusive ranges of the integer types the workspace uses, plus `f64`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform draw in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; bias is
/// < 2^-64 per draw, irrelevant for tests and benchmarks).
fn below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Degenerate full-width range: a raw draw is already uniform.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let x = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // start + u*(end-start) can round up to exactly `end` for very
        // narrow ranges; keep the half-open contract (a slight excess
        // of `start` beats returning the excluded endpoint).
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

pub mod distributions {
    use super::Rng;

    /// Types that can produce samples of `T` given a generator.
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(-50i64..=50);
            assert_eq!(x, b.gen_range(-50i64..=50));
            assert!((-50..=50).contains(&x));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(7);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn f64_upper_bound_stays_exclusive_even_for_one_ulp_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let lo = 1.0f64;
        let hi = f64::from_bits(lo.to_bits() + 1);
        for _ in 0..1000 {
            let x = rng.gen_range(lo..hi);
            assert!(x >= lo && x < hi, "{x} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn f64_range_stays_inside() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
        }
    }
}
