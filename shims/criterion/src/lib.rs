//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the `criterion_group!` / `criterion_main!` macros and the
//! `Criterion` / `Bencher` / `BatchSize` surface used by this
//! workspace's benches. Measurement is a plain wall-clock median over
//! `sample_size` samples — smoke-level numbers, not statistics. When
//! invoked with `--test` (as `cargo test` does for bench targets) each
//! benchmark body runs exactly once and nothing is measured.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the shim treats every variant
/// as "one setup per measured batch".
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100, test_mode: std::env::args().any(|a| a == "--test") }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // As in real criterion, the bench closure runs once; the
        // iteration loop lives inside `Bencher::iter`, so state the
        // closure captures (cursors, counters) persists across
        // iterations and per-bench setup is not repeated.
        let mut b = Bencher {
            samples: Vec::new(),
            test_mode: self.test_mode,
            sample_size: self.sample_size,
        };
        f(&mut b);
        if self.test_mode {
            println!("test bench {id} ... ok (ran once, --test mode)");
        } else {
            b.report(id);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let outer_sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, name: name.to_string(), outer_sample_size }
    }
}

/// Named group of related benchmarks; ids are printed as `group/id`.
/// A `sample_size` set on the group lasts until the group is dropped,
/// matching real criterion's group-scoped configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    outer_sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    pub fn finish(self) {}
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.criterion.sample_size = self.outer_sample_size;
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    test_mode: bool,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` for one untimed warm-up call plus `sample_size`
    /// timed iterations (exactly once under `--test`).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// `iter` with untimed per-iteration setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        // Warm-up: drop the chronologically-first 10% of samples, then
        // order the remainder for the percentile picks.
        let discard = self.samples.len() / 10;
        self.samples.drain(..discard);
        self.samples.sort();
        let kept = &self.samples[..];
        let median = kept[kept.len() / 2];
        let best = kept[0];
        println!(
            "{id:<40} median {:>12} ns/iter   best {:>12} ns/iter   ({} samples)",
            median.as_nanos(),
            best.as_nanos(),
            kept.len(),
        );
        self.samples.clear();
    }
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        c.test_mode = false;
        let mut runs = 0u32;
        c.bench_function("shim/self_test", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 6, "1 warm-up + 5 timed iterations");
    }

    #[test]
    fn group_sample_size_does_not_leak_to_later_benches() {
        let mut c = Criterion::default().sample_size(7);
        c.test_mode = false;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            let mut runs = 0u32;
            g.bench_function("scoped", |b| b.iter(|| runs += 1));
            assert_eq!(runs, 4, "1 warm-up + 3 timed iterations");
        }
        let mut runs = 0u32;
        c.bench_function("shim/after_group", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 8, "group sample_size leaked past the group");
    }

    #[test]
    fn groups_prefix_ids_and_batched_setup_is_untimed() {
        let mut c = Criterion::default().sample_size(3);
        c.test_mode = false;
        let mut g = c.benchmark_group("shim");
        let mut setups = 0u32;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(setups, 4, "1 warm-up + 3 timed iterations, each with fresh setup");
    }
}
