//! Offline stand-in for the slice of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope`, built on `std::thread::scope` (stable
//! since Rust 1.63). Matches the crossbeam calling convention — the
//! spawn closure receives the scope, and `scope` returns a `Result`
//! that is `Err` if any spawned thread panicked.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Wrapper over [`std::thread::Scope`] exposing crossbeam's
    /// closure-takes-the-scope spawn signature.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned;
    /// joins them all before returning. Returns `Err` with the panic
    /// payload if `f` or any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_can_borrow_locals() {
        let data = vec![1, 2, 3, 4];
        let data = &data;
        let total = thread::scope(|s| {
            let handles: Vec<_> =
                (0..2).map(|t| s.spawn(move |_| data[t * 2] + data[t * 2 + 1])).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
