//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The property this workspace relies on is the *API*: `lock()` /
//! `read()` / `write()` return guards directly instead of `Result`s.
//! Poisoning is neutralized by recovering the inner guard — a panic
//! while holding a lock does not wedge every later access, matching
//! `parking_lot` semantics closely enough for this codebase.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
