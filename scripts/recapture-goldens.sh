#!/usr/bin/env bash
# Re-captures (or checks) the golden constants pinned by
# tests/pool_determinism.rs.
#
# The goldens freeze the externally observable behavior of the buffer
# pool and of the B-link tree write path (counters after every operation,
# plus a content fingerprint).  They must only ever be re-captured from
# a commit whose behavior is *known correct* — typically the commit
# immediately before a refactor — never edited by hand to make a
# failing build pass.
#
# Scope: the pinned traces exercise the per-key descent write path
# (create / insert / delete / scan).  The bottom-up bulk loader (PR 7)
# is deliberately NOT golden-pinned — its page-exact I/O contract is
# asserted analytically against `predicted_pages` by tests/bulk_load.rs
# and by the fig21 measured anchors, so it needs no frozen trace here.
#
# Usage:
#   scripts/recapture-goldens.sh           print the freshly captured
#                                          GOLDEN lines (paste the values
#                                          into tests/pool_determinism.rs)
#   scripts/recapture-goldens.sh --check   re-capture into a temp dir and
#                                          diff against the constants in
#                                          tests/pool_determinism.rs;
#                                          non-zero exit on any drift.
#                                          CI runs this so the write-path
#                                          goldens cannot drift silently.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=capture
if [[ "${1:-}" == "--check" ]]; then
    mode=check
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# The test prints its GOLDEN lines before asserting, so a capture works
# even while the constants in the source are stale (|| true).
cargo test --test pool_determinism -- --nocapture >"$tmp/out.txt" 2>&1 || true
grep -oE 'GOLDEN[-A-Z]* .*' "$tmp/out.txt" | sort >"$tmp/captured.txt" || true
if [[ ! -s "$tmp/captured.txt" ]]; then
    echo "recapture-goldens: no GOLDEN lines captured — test harness output follows" >&2
    cat "$tmp/out.txt" >&2
    exit 1
fi

if [[ "$mode" == capture ]]; then
    cat "$tmp/captured.txt"
    exit 0
fi

# --check: reconstruct the expected GOLDEN lines from the constants in
# the test source (normalizing Rust "0x1234_abcd" literals to the
# "0x1234abcd" form `{:#x}` prints, and dropping the run-dependent
# "ops: N," field the captured write line carries), then diff.
normalize() {
    sed -E 's/GOLDEN-WRITE ops: [0-9]+, /GOLDEN-WRITE /'
}
normalize <"$tmp/captured.txt" | sort >"$tmp/captured.norm"

python3 - tests/pool_determinism.rs >"$tmp/expected.norm" <<'EOF'
import re, sys

src = open(sys.argv[1]).read()

def const_struct(name):
    m = re.search(rf"const {name}: IoSnapshot = IoSnapshot \{{(.*?)\}};", src, re.S)
    body = m.group(1)
    return {k: int(v.replace("_", "")) for k, v in re.findall(r"(\w+):\s*([0-9_]+)", body)}

def const_hash(name):
    m = re.search(rf"const {name}: u64 = 0x([0-9a-fA-F_]+);", src)
    return int(m.group(1).replace("_", ""), 16)

f = const_struct("GOLDEN_FINAL")
w = const_struct("GOLDEN_WRITE_FINAL")
lines = [
    "GOLDEN logical_reads: {logical_reads}, logical_writes: {logical_writes}, "
    "physical_reads: {physical_reads}, physical_writes: {physical_writes}, "
    "trace_hash: {h:#x}".format(h=const_hash("GOLDEN_TRACE_HASH"), **f),
    "GOLDEN-WRITE logical_reads: {logical_reads}, logical_writes: {logical_writes}, "
    "physical_reads: {physical_reads}, physical_writes: {physical_writes}, "
    "trace_hash: {t:#x}, content_hash: {c:#x}".format(
        t=const_hash("GOLDEN_WRITE_TRACE_HASH"),
        c=const_hash("GOLDEN_WRITE_CONTENT_HASH"),
        **w,
    ),
]
print("\n".join(sorted(lines)))
EOF

if diff -u "$tmp/expected.norm" "$tmp/captured.norm"; then
    echo "recapture-goldens: goldens match the captured behavior"
else
    echo "recapture-goldens: DRIFT — the captured write-path behavior no longer matches" >&2
    echo "the constants in tests/pool_determinism.rs.  Either the change is a bug, or it" >&2
    echo "is intentional and the goldens must be re-captured (run this script without" >&2
    echo "--check from a known-correct commit) with the diff explained in CHANGES.md." >&2
    exit 1
fi
