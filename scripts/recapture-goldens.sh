#!/usr/bin/env bash
# Re-captures the golden constants pinned by tests/pool_determinism.rs.
#
# The goldens freeze the externally observable behavior of the buffer
# pool and of the B+-tree write path (counters after every operation,
# plus a content fingerprint).  They must only ever be re-captured from
# a commit whose behavior is *known correct* — typically the commit
# immediately before a refactor — never edited by hand to make a
# failing build pass.
#
# Usage: scripts/recapture-goldens.sh
# Prints the GOLDEN lines; paste the values into tests/pool_determinism.rs.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo test --test pool_determinism -- --nocapture 2>&1 | grep -E '^GOLDEN' || {
    # Test output interleaves the test name on the same line under -q;
    # fall back to a looser match.
    cargo test --test pool_determinism -- --nocapture 2>&1 | grep -oE 'GOLDEN[-A-Z]* .*'
}
