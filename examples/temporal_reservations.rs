//! Temporal scenario: a reservation table with open-ended validity.
//!
//! Demonstrates the paper's Section 4.5 (Allen topological relations) and
//! Section 4.6 (`now` / `infinity` endpoints) on a hotel-room booking
//! system with valid-time semantics.
//!
//! ```sh
//! cargo run --example temporal_reservations
//! ```

use ri_tree::prelude::*;

// Days since 2020-01-01 as our time axis.
const D2024: i64 = 1461;

fn main() {
    let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
    let db = Arc::new(Database::create(pool).unwrap());
    let bookings = RiTree::create(db, "bookings").unwrap();

    // Closed bookings: [check-in, check-out] day ranges.
    let stays = [
        (D2024 + 10, D2024 + 14), // id 1
        (D2024 + 12, D2024 + 20), // id 2
        (D2024 + 14, D2024 + 15), // id 3
        (D2024 + 21, D2024 + 28), // id 4
    ];
    for (i, &(a, b)) in stays.iter().enumerate() {
        bookings.insert(Interval::new(a, b).unwrap(), i as i64 + 1).unwrap();
    }

    // A long-term corporate lease with no agreed end: upper = infinity.
    bookings.insert_open(D2024 + 5, OpenEnd::Infinity, 100).unwrap();
    // A guest currently checked in: the stay is valid "until now".
    bookings.insert_open(D2024 + 13, OpenEnd::Now, 200).unwrap();

    // Who occupies a room during days 14..16, as of day 18?
    let now = D2024 + 18;
    let q = Interval::new(D2024 + 14, D2024 + 16).unwrap();
    let occupied = bookings.intersection_at(q, now).unwrap();
    println!("occupied during day 14..16 (now = 18): ids {occupied:?}");
    assert_eq!(occupied, vec![1, 2, 3, 100, 200]);

    // The same query evaluated *before* the now-guest arrived: no id 200.
    let earlier = bookings.intersection_at(q, D2024 + 12).unwrap();
    println!("same query as of day 12:              ids {earlier:?}");
    assert!(!earlier.contains(&200));

    // Allen relations: fine-grained temporal relationships (Section 4.5).
    let staff_window = Interval::new(D2024 + 14, D2024 + 20).unwrap();
    println!("\nrelative to the staff window {staff_window}:");
    for rel in [
        AllenRelation::Before,
        AllenRelation::Meets,
        AllenRelation::Overlaps,
        AllenRelation::Finishes,
        AllenRelation::MetBy,
        AllenRelation::After,
    ] {
        let ids = bookings.allen_at(rel, staff_window, now).unwrap();
        println!("  {rel:?}: {ids:?}");
    }

    // "meets": checkout exactly at window start (id 1 ends on day 14).
    assert!(bookings.allen_at(AllenRelation::Meets, staff_window, now).unwrap().contains(&1));
    // "met-by": check-in exactly at window end (id 4 starts on day 21? no —
    // met-by means lower == window.upper, i.e. day 20; nobody qualifies).
    // "after": bookings strictly after the window (id 4).
    assert!(bookings.allen_at(AllenRelation::After, staff_window, now).unwrap().contains(&4));

    // Close out the now-booking: the guest checks out on day 19, giving the
    // stay a fixed upper bound.
    bookings.delete_open(D2024 + 13, OpenEnd::Now, 200).unwrap();
    bookings.insert(Interval::new(D2024 + 13, D2024 + 19).unwrap(), 200).unwrap();
    let later = bookings.intersection_at(q, D2024 + 40).unwrap();
    println!("\nafter checkout, day 14..16 query still finds the stay: {later:?}");
    assert!(later.contains(&200));
}
