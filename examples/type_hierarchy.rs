//! Object-oriented scenario: class hierarchies as intervals.
//!
//! The paper's introduction cites "hierarchical type systems in
//! object-oriented databases" [KRVV 93] as an interval workload: numbering
//! a class hierarchy in depth-first order assigns each class the interval
//! `[dfs_entry, dfs_exit]`, and `B` is a (transitive) subtype of `A`
//! exactly when `interval(B) ⊆ interval(A)`.  "Find all types compatible
//! with T" becomes a stabbing/containment query on the RI-tree.
//!
//! ```sh
//! cargo run --example type_hierarchy
//! ```

use ri_tree::prelude::*;
use std::collections::HashMap;

struct Hierarchy {
    names: Vec<&'static str>,
    children: Vec<Vec<usize>>,
    spans: Vec<(i64, i64)>,
}

impl Hierarchy {
    fn new(edges: &[(&'static str, &'static str)]) -> Hierarchy {
        let mut ids: HashMap<&str, usize> = HashMap::new();
        let mut names = Vec::new();
        let mut intern = |n: &'static str, names: &mut Vec<&'static str>| {
            *ids.entry(n).or_insert_with(|| {
                names.push(n);
                names.len() - 1
            })
        };
        let mut children: Vec<Vec<usize>> = Vec::new();
        for &(parent, child) in edges {
            let p = intern(parent, &mut names);
            let c = intern(child, &mut names);
            children.resize(names.len(), Vec::new());
            children[p].push(c);
        }
        let mut h = Hierarchy { names, children, spans: Vec::new() };
        h.spans = vec![(0, 0); h.names.len()];
        let mut counter = 0;
        h.dfs(0, &mut counter);
        h
    }

    /// Assigns `[entry, exit]` DFS numbers: a node's span contains exactly
    /// its descendants' spans.
    fn dfs(&mut self, node: usize, counter: &mut i64) {
        let entry = *counter;
        *counter += 1;
        let kids = self.children[node].clone();
        for c in kids {
            self.dfs(c, counter);
        }
        self.spans[node] = (entry, *counter);
        *counter += 1;
    }

    fn id_of(&self, name: &str) -> usize {
        self.names.iter().position(|&n| n == name).unwrap()
    }
}

fn main() {
    // A small type system: Object at the root.
    let h = Hierarchy::new(&[
        ("Object", "Number"),
        ("Object", "Collection"),
        ("Object", "Stream"),
        ("Number", "Integer"),
        ("Number", "Float"),
        ("Integer", "BigInt"),
        ("Integer", "SmallInt"),
        ("Collection", "List"),
        ("Collection", "Set"),
        ("List", "ArrayList"),
        ("List", "LinkedList"),
        ("Set", "HashSet"),
    ]);

    let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
    let db = Arc::new(Database::create(pool).unwrap());
    let types = RiTree::create(db, "types").unwrap();
    for (id, &(lo, hi)) in h.spans.iter().enumerate() {
        types.insert(Interval::new(lo, hi).unwrap(), id as i64).unwrap();
    }
    println!("indexed {} types as DFS-number intervals", h.names.len());

    // All supertypes of SmallInt: every type whose span contains
    // SmallInt's entry number — one stabbing query.
    let small_int = h.id_of("SmallInt");
    let ancestors = types.stab(h.spans[small_int].0).unwrap();
    let names: Vec<&str> = ancestors.iter().map(|&i| h.names[i as usize]).collect();
    println!("supertypes of SmallInt: {names:?}");
    assert_eq!(names, ["Object", "Number", "Integer", "SmallInt"]);

    // All subtypes of Collection: types whose span lies inside
    // Collection's span — containment via the Allen relations.
    let coll = h.id_of("Collection");
    let span = Interval::new(h.spans[coll].0, h.spans[coll].1).unwrap();
    let mut subs = Vec::new();
    for rel in [
        AllenRelation::During,
        AllenRelation::Starts,
        AllenRelation::Finishes,
        AllenRelation::Equals,
    ] {
        subs.extend(types.allen(rel, span).unwrap());
    }
    subs.sort_unstable();
    let names: Vec<&str> = subs.iter().map(|&i| h.names[i as usize]).collect();
    println!("subtypes of Collection: {names:?}");
    assert!(names.contains(&"ArrayList") && names.contains(&"HashSet"));
    assert!(!names.contains(&"Float"));

    // Is ArrayList compatible with (a subtype of) List?  Span containment.
    let (al, list) = (h.id_of("ArrayList"), h.id_of("List"));
    let compatible = h.spans[list].0 <= h.spans[al].0 && h.spans[al].1 <= h.spans[list].1;
    println!("ArrayList <: List ? {compatible}");
    assert!(compatible);
}
