//! Engineering scenario: inaccurate measurements with tolerances.
//!
//! The paper's introduction lists "inaccurate measurements with tolerances
//! in engineering databases" as a motivating workload: each measured value
//! is really an interval `[value − tol, value + tol]`, and questions like
//! "which parts could have diameter 25.00 mm?" are stabbing queries.
//!
//! ```sh
//! cargo run --example engineering_tolerances
//! ```

use ri_tree::prelude::*;

/// Fixed-point micrometres (1 mm = 1000 units) keep the domain integral.
const MM: i64 = 1000;

fn main() {
    let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
    let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
    let shafts = RiTree::create(db, "shaft_diameters").unwrap();

    // (part id, measured diameter in µm, tolerance in µm)
    let measurements: &[(i64, i64, i64)] = &[
        (1001, 25 * MM, 40),
        (1002, 25 * MM + 60, 25),
        (1003, 24 * MM + 900, 80),
        (1004, 26 * MM, 15),
        (1005, 25 * MM - 30, 10),
        (1006, 25 * MM + 2, 5),
    ];
    for &(id, value, tol) in measurements {
        shafts.insert(Interval::new(value - tol, value + tol).unwrap(), id).unwrap();
    }
    println!("stored {} measurement intervals", shafts.count().unwrap());

    // Which parts could actually measure exactly 25.000 mm?
    let spec = 25 * MM;
    let candidates = shafts.stab(spec).unwrap();
    println!("parts whose tolerance window contains 25.000 mm: {candidates:?}");
    assert_eq!(candidates, vec![1001, 1006]);

    // Which parts might fall inside the fit range [24.95 mm, 25.05 mm]?
    let fit = Interval::new(spec - 50, spec + 50).unwrap();
    let maybe_fit = shafts.intersection(fit).unwrap();
    println!("parts possibly within {fit} µm: {maybe_fit:?}");

    // Which parts are *certainly* within the fit range?  Their whole
    // tolerance window must lie inside: During / Starts / Finishes / Equals.
    let mut certain = Vec::new();
    for rel in [
        AllenRelation::During,
        AllenRelation::Starts,
        AllenRelation::Finishes,
        AllenRelation::Equals,
    ] {
        certain.extend(shafts.allen(rel, fit).unwrap());
    }
    certain.sort_unstable();
    certain.dedup();
    println!("parts certainly within the fit range:  {certain:?}");
    assert!(certain.contains(&1001) && certain.contains(&1005) && certain.contains(&1006));
    assert!(!certain.contains(&1002), "1002's window sticks out above the range");

    // Quality control: a batch of 50k simulated measurements, then the
    // paper's headline query again at scale.
    let mut x = 0x1EE7u64;
    for i in 0..50_000i64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let value = 20 * MM + (x % (10 * MM as u64)) as i64;
        let tol = 5 + (x >> 40) as i64 % 95;
        shafts.insert(Interval::new(value - tol, value + tol).unwrap(), 10_000 + i).unwrap();
    }
    let before = pool.stats().snapshot();
    let hits = shafts.stab(spec).unwrap();
    let io = pool.stats().snapshot().since(&before);
    println!(
        "\nat {} intervals: stab(25.000 mm) -> {} candidate parts, {} physical reads",
        shafts.count().unwrap(),
        hits.len(),
        io.physical_reads
    );
}
