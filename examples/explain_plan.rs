//! Shows the relational machinery under the hood: execution plans
//! (the paper's Figure 10), transient node tables, the Figure 8 → Figure 9
//! plan transformation, and I/O accounting.
//!
//! ```sh
//! cargo run --example explain_plan
//! ```

use ri_tree::prelude::*;
use ri_tree::relstore::explain::explain;

fn main() {
    let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
    let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
    let tree = RiTree::create(db, "plans").unwrap();

    // A spread of intervals so the traversal produces interesting node lists.
    for i in 0..20_000i64 {
        let l = (i * 53) % 1_000_000;
        tree.insert(Interval::new(l, l + (i % 977)).unwrap(), i).unwrap();
    }
    let q = Interval::new(400_000, 420_000).unwrap();

    // The two-fold plan of Figure 9 / Figure 10.
    println!("--- two-fold plan (paper Figure 9/10) ---");
    println!("{}", tree.explain(q).unwrap());

    // The preliminary three-fold plan of Figure 8.
    let fig8 = tree.intersection_plan_fig8(q, i64::MAX - 2).unwrap();
    println!("--- preliminary three-fold plan (paper Figure 8) ---");
    println!("{}", explain(&fig8));

    // Both return identical results (Section 4.3's Lemma justifies the
    // merge); the two-fold version has one plan branch less, which is what
    // the paper means by "reduce the cost for internal query management".
    let two = tree.intersection(q).unwrap();
    let (three, stats8) = tree.execute_id_plan(&fig8).unwrap();
    assert_eq!(two, three);
    println!("both plans return {} intervals", two.len());

    let plan9 = tree.intersection_plan(q, i64::MAX - 2).unwrap();
    let (_, stats9) = tree.execute_id_plan(&plan9).unwrap();
    println!(
        "index searches: two-fold = {}, three-fold = {} (2 vs 3 UNION branches)",
        stats9.index_searches, stats8.index_searches
    );
    assert!(stats9.index_searches <= stats8.index_searches);

    // The backbone parameters driving the traversal (Section 3.4).
    let p = tree.load_params().unwrap();
    println!(
        "\nbackbone parameters: offset = {:?}, leftRoot = {}, rightRoot = {}, minstep2 = {}",
        p.offset, p.left_root, p.right_root, p.minstep2
    );
    println!("tree height (Section 3.5): {}", p.height());

    // Physical I/O of one cold-cache query.
    pool.clear_cache().unwrap();
    let before = pool.stats().snapshot();
    let hits = tree.intersection(q).unwrap();
    let delta = pool.stats().snapshot().since(&before);
    println!(
        "\ncold-cache query: {} results, {} physical block reads",
        hits.len(),
        delta.physical_reads
    );
}
