//! Spatial scenario: 2D window queries via space-filling-curve intervals.
//!
//! The paper's introduction motivates interval management with "line
//! segments on a space-filling curve in spatial applications" [FR 89]:
//! a 2D region decomposes into runs of consecutive cells along a Z-order
//! curve, each run being a 1D interval.  Indexing those runs with an
//! RI-tree turns 2D window queries into interval intersection queries.
//!
//! ```sh
//! cargo run --example spatial_curve
//! ```

use ri_tree::prelude::*;

/// Interleaves the bits of (x, y) into a Z-order curve position (16 bits
/// per axis is plenty for the demo grid).
fn z_order(x: u32, y: u32) -> i64 {
    let mut z = 0i64;
    for bit in 0..16 {
        z |= (((x >> bit) & 1) as i64) << (2 * bit);
        z |= (((y >> bit) & 1) as i64) << (2 * bit + 1);
    }
    z
}

/// Decomposes the axis-aligned rectangle into maximal runs of consecutive
/// Z-order positions (the curve "segments" of [FR 89]).
fn z_runs(x0: u32, y0: u32, x1: u32, y1: u32) -> Vec<(i64, i64)> {
    let mut cells: Vec<i64> =
        (y0..=y1).flat_map(|y| (x0..=x1).map(move |x| z_order(x, y))).collect();
    cells.sort_unstable();
    let mut runs = Vec::new();
    let mut start = cells[0];
    let mut prev = cells[0];
    for &c in &cells[1..] {
        if c != prev + 1 {
            runs.push((start, prev));
            start = c;
        }
        prev = c;
    }
    runs.push((start, prev));
    runs
}

fn main() {
    let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
    let db = Arc::new(Database::create(pool).unwrap());
    let index = RiTree::create(db, "zcurve").unwrap();

    /// A building footprint: id plus grid rectangle (x0, y0, x1, y1).
    type Building = (i64, (u32, u32, u32, u32));

    // Three buildings on a 256x256 grid, decomposed into curve runs.  Every
    // run is stored under its building id (ids may repeat across runs).
    let buildings: &[Building] = &[
        (1, (10, 10, 40, 30)), // warehouse
        (2, (60, 20, 90, 60)), // office block
        (3, (35, 55, 55, 75)), // lab
    ];
    let mut total_runs = 0;
    for &(id, (x0, y0, x1, y1)) in buildings {
        for (lo, hi) in z_runs(x0, y0, x1, y1) {
            index.insert(Interval::new(lo, hi).unwrap(), id).unwrap();
            total_runs += 1;
        }
    }
    println!("indexed {total_runs} curve runs for {} buildings", buildings.len());
    println!("backbone height: {}", index.height().unwrap());

    // A 2D window query becomes: decompose the window into runs, run one
    // intersection query per run, union the ids.
    let window = (30u32, 25u32, 70u32, 65u32);
    let mut hits: Vec<i64> = Vec::new();
    let runs = z_runs(window.0, window.1, window.2, window.3);
    for &(lo, hi) in &runs {
        hits.extend(index.intersection(Interval::new(lo, hi).unwrap()).unwrap());
    }
    hits.sort_unstable();
    hits.dedup();
    println!(
        "window ({}, {})..({}, {}) decomposes into {} runs; intersecting buildings: {hits:?}",
        window.0,
        window.1,
        window.2,
        window.3,
        runs.len()
    );
    assert_eq!(hits, vec![1, 2, 3], "all three buildings overlap the window");

    // A small window inside the warehouse only.
    let mut hits2: Vec<i64> = Vec::new();
    for (lo, hi) in z_runs(12, 12, 14, 14) {
        hits2.extend(index.intersection(Interval::new(lo, hi).unwrap()).unwrap());
    }
    hits2.sort_unstable();
    hits2.dedup();
    println!("window (12,12)..(14,14): {hits2:?}");
    assert_eq!(hits2, vec![1]);
}
