//! Quickstart: create an RI-tree, insert intervals, run queries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ri_tree::prelude::*;

fn main() {
    // A fresh in-memory database configured like the paper's server:
    // 2 KB blocks, 200-block cache.
    let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
    let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());

    // This performs the DDL of the paper's Figure 2:
    //   CREATE TABLE RI_demo (node int, lower int, upper int, id int);
    //   CREATE INDEX RI_demo_LOWER ON RI_demo (node, lower, id);
    //   CREATE INDEX RI_demo_UPPER ON RI_demo (node, upper, id);
    let tree = RiTree::create(Arc::clone(&db), "demo").unwrap();
    println!("created RI-tree schema: table RI_demo + lowerIndex + upperIndex\n");

    // Insert a few validity periods (think: versions of a record).
    let periods = [(1995, 1999), (1998, 2003), (2001, 2004), (2002, 2009), (2007, 2011)];
    for (id, &(from, to)) in periods.iter().enumerate() {
        tree.insert(Interval::new(from, to).unwrap(), id as i64).unwrap();
    }
    println!(
        "inserted {} intervals; backbone height = {}",
        tree.count().unwrap(),
        tree.height().unwrap()
    );

    // Intersection query: which versions were valid during [2000, 2002]?
    let q = Interval::new(2000, 2002).unwrap();
    let hits = tree.intersection(q).unwrap();
    println!("\nintersection {q} -> ids {hits:?}");

    // Stabbing (point) query: which versions were valid in 2003?
    println!("stab 2003        -> ids {:?}", tree.stab(2003).unwrap());

    // The query plan the engine executes (the paper's Figure 10):
    println!("\nEXPLAIN for {q}:\n{}", tree.explain(q).unwrap());

    // I/O accounting, the paper's primary metric.
    let stats = pool.stats().snapshot();
    println!(
        "physical I/O so far: {} block reads, {} block writes",
        stats.physical_reads, stats.physical_writes
    );

    // Deletion is symmetric to insertion.
    assert!(tree.delete(Interval::new(1995, 1999).unwrap(), 0).unwrap());
    println!("\ndeleted id 0; stab 1996 -> {:?}", tree.stab(1996).unwrap());
}
